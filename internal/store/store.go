// Package store provides pluggable checkpoint storage for the execution
// runtime (internal/exec): a small Store interface, an in-memory
// implementation, a crash-durable file implementation built on the
// repo's temp+fsync+rename discipline (internal/fsx), a checksummed
// schema-versioned codec layer, and a deterministic fault-injecting
// decorator for robustness testing.
//
// The intended composition is
//
//	store.Checked(store.NewFileStore(dir))                  // production
//	store.Checked(store.NewFaultStore(inner, plan))         // fault drills
//
// Checked applies the codec: every payload is sealed (magic, schema
// version, length, CRC-32) on Save and verified on Load, so a torn or
// bit-rotted checkpoint surfaces as ErrCorrupt instead of being handed
// to the executor as good state. The executor treats ErrCorrupt as
// "fall back to the previous checkpoint", which is what makes torn
// writes survivable rather than fatal.
package store

import (
	"errors"
	"fmt"
	"strings"
)

// ErrNotFound reports a missing checkpoint (unknown run or sequence).
var ErrNotFound = errors.New("store: checkpoint not found")

// ErrCorrupt reports a checkpoint that failed codec verification: bad
// magic, unsupported schema version, truncated payload or checksum
// mismatch — the expected residue of a write torn by a crash.
var ErrCorrupt = errors.New("store: corrupt checkpoint")

// Store persists checkpoint payloads keyed by (run ID, sequence number).
// Save overwrites: re-executing a segment after a rollback re-saves the
// same sequence, and the latest write wins. Implementations must be safe
// for concurrent use by multiple goroutines operating on distinct runs;
// a single run is always driven by one executor at a time.
type Store interface {
	// Save persists payload as checkpoint seq of run.
	Save(run string, seq uint64, payload []byte) error
	// Load returns checkpoint seq of run, or ErrNotFound.
	Load(run string, seq uint64) ([]byte, error)
	// List returns the sequence numbers persisted for run, ascending.
	// A run with no checkpoints yields an empty list and no error.
	List(run string) ([]uint64, error)
	// Delete removes checkpoint seq of run; removing a missing
	// checkpoint returns ErrNotFound.
	Delete(run string, seq uint64) error
}

// Unwrapper is implemented by decorator stores that expose their inner
// store, so capability discovery (RunLatency) can walk a composed
// stack.
type Unwrapper interface {
	Unwrap() Store
}

// ClockBinder is implemented by layers whose outcomes depend on virtual
// time (RemoteStore evaluates partition windows at delivery time).
// BindClock registers the time source for one run; an unbound run reads
// time zero.
type ClockBinder interface {
	BindClock(run string, now func() float64)
}

// BindClock walks the decorator stack of s and registers now as run's
// virtual-time source with every layer that consumes one. Stores that
// fan out to several inner stores (QuorumStore) implement ClockBinder
// themselves and forward the binding to each replica, so a single call
// at the top of a composed stack reaches every time-dependent layer.
// Returns the number of layers bound; zero means the stack is
// time-independent.
func BindClock(s Store, run string, now func() float64) int {
	bound := 0
	for s != nil {
		if b, isBinder := s.(ClockBinder); isBinder {
			b.BindClock(run, now)
			bound++
		}
		u, isWrapper := s.(Unwrapper)
		if !isWrapper {
			break
		}
		s = u.Unwrap()
	}
	return bound
}

// runLatencyReader is the capability behind RunLatency; FaultStore
// implements it.
type runLatencyReader interface {
	RunLatency(run string) float64
}

// lastOpReader is the capability behind LastOp; FaultStore implements
// it.
type lastOpReader interface {
	LastOp(run string) RunOp
}

// LastOp walks the decorator stack of s looking for a layer that tracks
// per-run operations (FaultStore) and returns the run's operation count
// and the EXACT injected latency of its most recent operation. ok is
// false when no layer tracks operations. Replay-deterministic callers
// must use this — comparing Ops before and after an operation tells
// them whether the injector was reached (a quota layer may reject
// first), and Latency is the drawn value itself, free of the
// accumulation rounding that differencing RunLatency would pick up.
func LastOp(s Store, run string) (op RunOp, ok bool) {
	for s != nil {
		if r, isReader := s.(lastOpReader); isReader {
			return r.LastOp(run), true
		}
		u, isWrapper := s.(Unwrapper)
		if !isWrapper {
			return RunOp{}, false
		}
		s = u.Unwrap()
	}
	return RunOp{}, false
}

// RunLatency walks the decorator stack of s looking for a layer that
// attributes injected virtual latency per run (FaultStore), and returns
// that run's accumulated latency. ok is false when no layer in the
// stack tracks latency — a real store whose latency is wall-clock, not
// virtual — in which case callers should treat latency as unobservable
// rather than zero-cost.
func RunLatency(s Store, run string) (latency float64, ok bool) {
	for s != nil {
		if r, isReader := s.(runLatencyReader); isReader {
			return r.RunLatency(run), true
		}
		u, isWrapper := s.(Unwrapper)
		if !isWrapper {
			return 0, false
		}
		s = u.Unwrap()
	}
	return 0, false
}

// Latest returns the highest sequence number persisted for run, with
// ok=false when the run has no checkpoints.
func Latest(s Store, run string) (seq uint64, ok bool, err error) {
	seqs, err := s.List(run)
	if err != nil {
		return 0, false, err
	}
	if len(seqs) == 0 {
		return 0, false, nil
	}
	return seqs[len(seqs)-1], true, nil
}

// validRun rejects run IDs that cannot double as path components — the
// file store maps runs to directories, and the other implementations
// enforce the same rule so a run ID that works on one store works on
// all of them.
func validRun(run string) error {
	if run == "" {
		return fmt.Errorf("store: empty run ID")
	}
	if strings.ContainsAny(run, "/\\") || run == "." || run == ".." {
		return fmt.Errorf("store: run ID %q must be a single path component", run)
	}
	return nil
}
