package store_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/store"
)

// stores returns every implementation under one name each, fresh per
// call, so the contract tests run over all of them.
func stores(t *testing.T) map[string]store.Store {
	t.Helper()
	fs, err := store.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]store.Store{
		"mem":          store.NewMemStore(),
		"file":         fs,
		"checked(mem)": store.Checked(store.NewMemStore()),
	}
}

func TestStoreContract(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Load("run", 1); !errors.Is(err, store.ErrNotFound) {
				t.Fatalf("Load on empty store: %v, want ErrNotFound", err)
			}
			seqs, err := s.List("run")
			if err != nil || len(seqs) != 0 {
				t.Fatalf("List on empty store: %v, %v", seqs, err)
			}
			for seq, payload := range map[uint64]string{1: "one", 3: "three", 2: "two"} {
				if err := s.Save("run", seq, []byte(payload)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Save("other", 7, []byte("isolated")); err != nil {
				t.Fatal(err)
			}
			seqs, err = s.List("run")
			if err != nil || !reflect.DeepEqual(seqs, []uint64{1, 2, 3}) {
				t.Fatalf("List = %v, %v; want ascending 1,2,3", seqs, err)
			}
			got, err := s.Load("run", 3)
			if err != nil || string(got) != "three" {
				t.Fatalf("Load(3) = %q, %v", got, err)
			}
			// Overwrite wins.
			if err := s.Save("run", 3, []byte("three'")); err != nil {
				t.Fatal(err)
			}
			got, err = s.Load("run", 3)
			if err != nil || string(got) != "three'" {
				t.Fatalf("Load(3) after overwrite = %q, %v", got, err)
			}
			if seq, ok, err := store.Latest(s, "run"); err != nil || !ok || seq != 3 {
				t.Fatalf("Latest = %d, %v, %v", seq, ok, err)
			}
			if err := s.Delete("run", 2); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("run", 2); !errors.Is(err, store.ErrNotFound) {
				t.Fatalf("double Delete: %v, want ErrNotFound", err)
			}
			seqs, _ = s.List("run")
			if !reflect.DeepEqual(seqs, []uint64{1, 3}) {
				t.Fatalf("List after delete = %v", seqs)
			}
			// Run isolation.
			got, err = s.Load("other", 7)
			if err != nil || string(got) != "isolated" {
				t.Fatalf("other run perturbed: %q, %v", got, err)
			}
			// Run IDs must be path-safe on every implementation.
			for _, bad := range []string{"", "a/b", `a\b`, ".", ".."} {
				if err := s.Save(bad, 1, []byte("x")); err == nil {
					t.Fatalf("Save accepted run ID %q", bad)
				}
			}
		})
	}
}

func TestCheckedDetectsCorruption(t *testing.T) {
	mem := store.NewMemStore()
	s := store.Checked(mem)
	payload := []byte("the quick brown fox jumps over the lazy dog")
	if err := s.Save("r", 1, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("r", 1)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("round trip = %q, %v", got, err)
	}
	sealed, err := mem.Load("r", 1)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string][]byte{
		"truncated":   sealed[:len(sealed)/2],
		"empty":       {},
		"bad magic":   append([]byte("XXXXXXXX"), sealed[8:]...),
		"flipped bit": flipBit(sealed, len(sealed)/2),
		"flipped crc": flipBit(sealed, len(sealed)-1),
	}
	for name, mut := range mutations {
		if err := mem.Save("r", 2, mut); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load("r", 2); !errors.Is(err, store.ErrCorrupt) {
			t.Errorf("%s frame: Load = %v, want ErrCorrupt", name, err)
		}
	}
	// The intact frame still verifies.
	if _, err := s.Load("r", 1); err != nil {
		t.Fatalf("intact frame failed after corrupt siblings: %v", err)
	}
}

func flipBit(b []byte, i int) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	out[i] ^= 0x40
	return out
}

func TestFileStoreSurvivesDebris(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("r", 5, []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Orphaned temp files and foreign names are not checkpoints.
	for _, name := range []string{".tmp-12345", "notes.txt", "ckpt-xyz.bin"} {
		if err := os.WriteFile(filepath.Join(dir, "r", name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := fs.List("r")
	if err != nil || !reflect.DeepEqual(seqs, []uint64{5}) {
		t.Fatalf("List with debris = %v, %v", seqs, err)
	}
	// Reopening the same directory sees the same state.
	fs2, err := store.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Load("r", 5)
	if err != nil || string(got) != "good" {
		t.Fatalf("reopen Load = %q, %v", got, err)
	}
}

func TestFaultStoreDeterminism(t *testing.T) {
	plan := store.FaultPlan{Seed: 42, WriteFail: 0.2, TornWrite: 0.2, LoseOld: 0.3, ReadFail: 0.2, MeanLatency: 3}
	script := func() (string, store.FaultStats) {
		fs := store.NewFaultStore(store.NewMemStore(), plan)
		var log strings.Builder
		for seq := uint64(1); seq <= 20; seq++ {
			err := fs.Save("r", seq, []byte(strings.Repeat("x", 64)))
			log.WriteString(errSig(err))
		}
		for seq := uint64(1); seq <= 20; seq++ {
			_, err := fs.Load("r", seq)
			log.WriteString(errSig(err))
		}
		return log.String(), fs.Stats()
	}
	log1, st1 := script()
	log2, st2 := script()
	if log1 != log2 {
		t.Fatalf("fault sequences differ:\n%s\n%s", log1, log2)
	}
	if st1 != st2 {
		t.Fatalf("stats differ: %+v vs %+v", st1, st2)
	}
	if st1.WriteFails == 0 || st1.TornWrites == 0 || st1.ReadFails == 0 || st1.LostOld == 0 {
		t.Fatalf("plan injected nothing in some class: %+v", st1)
	}
	if st1.Latency <= 0 {
		t.Fatalf("no injected latency: %+v", st1)
	}
}

func errSig(err error) string {
	switch {
	case err == nil:
		return "."
	case errors.Is(err, store.ErrInjectedWrite):
		return "W"
	case errors.Is(err, store.ErrInjectedRead):
		return "R"
	case errors.Is(err, store.ErrNotFound):
		return "n"
	default:
		return "?"
	}
}

func TestFaultStoreTornWritesDetectedByChecked(t *testing.T) {
	// All writes tear: every persisted frame must fail codec
	// verification, and none may verify as good data.
	inner := store.NewMemStore()
	s := store.Checked(store.NewFaultStore(inner, store.FaultPlan{Seed: 7, TornWrite: 1}))
	for seq := uint64(1); seq <= 10; seq++ {
		if err := s.Save("r", seq, []byte(strings.Repeat("payload", 10))); !errors.Is(err, store.ErrInjectedWrite) {
			t.Fatalf("torn save reported %v", err)
		}
	}
	seqs, err := inner.List("r")
	if err != nil || len(seqs) == 0 {
		t.Fatalf("torn writes persisted nothing: %v, %v", seqs, err)
	}
	for _, seq := range seqs {
		if _, err := s.Load("r", seq); !errors.Is(err, store.ErrCorrupt) {
			t.Errorf("seq %d: torn frame loaded as %v, want ErrCorrupt", seq, err)
		}
	}
}

func TestFaultStoreLoseOldFallback(t *testing.T) {
	// With LoseOld = 1 every save destroys one older checkpoint, so at
	// most the newest plus... exactly one survivor chain remains; the
	// newest is always intact.
	s := store.NewFaultStore(store.NewMemStore(), store.FaultPlan{Seed: 3, LoseOld: 1})
	for seq := uint64(1); seq <= 8; seq++ {
		if err := s.Save("r", seq, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := s.List("r")
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) >= 8 {
		t.Fatalf("LoseOld=1 lost nothing: %v", seqs)
	}
	if seqs[len(seqs)-1] != 8 {
		t.Fatalf("newest checkpoint lost: %v", seqs)
	}
}

// TestFaultStoreLatencyAllOps pins the keyed-stream contract's coverage:
// EVERY operation — Save, Load, List and Delete — pays injected latency,
// the per-run attribution isolates tenants, LastOp exposes each
// operation's exact drawn value, and the whole trace is deterministic
// across injector instances.
func TestFaultStoreLatencyAllOps(t *testing.T) {
	plan := store.FaultPlan{Seed: 21, MeanLatency: 2}
	script := func() ([]float64, float64, float64, store.FaultStats) {
		fs := store.NewFaultStore(store.NewMemStore(), plan)
		var lats []float64
		step := func(op func()) {
			op()
			lats = append(lats, fs.LastOp("a").Latency)
		}
		step(func() { fs.Save("a", 1, []byte("payload")) })
		step(func() { fs.Load("a", 1) })
		step(func() { fs.List("a") })
		step(func() { fs.Delete("a", 1) })
		fs.Save("b", 1, []byte("other tenant"))
		return lats, fs.RunLatency("a"), fs.RunLatency("b"), fs.Stats()
	}
	lats1, a1, b1, st1 := script()
	lats2, a2, b2, st2 := script()
	if !reflect.DeepEqual(lats1, lats2) || a1 != a2 || b1 != b2 || st1 != st2 {
		t.Fatalf("latency trace not deterministic: %v/%v vs %v/%v", lats1, a1, lats2, a2)
	}
	var sum float64
	for i, l := range lats1 {
		if l <= 0 {
			t.Fatalf("operation %d paid no latency: %v", i, lats1)
		}
		sum += l
	}
	if sum != a1 {
		t.Fatalf("RunLatency(a) = %v, sum of per-op values %v", a1, sum)
	}
	if b1 <= 0 {
		t.Fatal("run b paid no latency")
	}
	if st1.Latency != a1+b1 {
		t.Fatalf("Stats.Latency %v != per-run totals %v", st1.Latency, a1+b1)
	}
	if op := fsLastOp(t, plan); op.Ops != 0 || op.Latency != 0 {
		t.Fatalf("fresh injector reports prior ops: %+v", op)
	}
}

func fsLastOp(t *testing.T, plan store.FaultPlan) store.RunOp {
	t.Helper()
	fs := store.NewFaultStore(store.NewMemStore(), plan)
	op, ok := store.LastOp(fs, "never-used")
	if !ok {
		t.Fatal("FaultStore does not expose LastOp")
	}
	return op
}

// TestFaultStoreLogicalKeysInvariance pins the logical keying mode: an
// operation's injected outcome is a pure function of (kind, run, seq,
// attempt), so it is invariant under interleaved traffic from other
// runs and resets with a fresh injector instance — the property
// adaptive kill/resume identity and multi-tenant drills rest on.
func TestFaultStoreLogicalKeysInvariance(t *testing.T) {
	plan := store.FaultPlan{Seed: 33, WriteFail: 0.4, ReadFail: 0.4, MeanLatency: 1, LogicalKeys: true}
	payload := []byte(strings.Repeat("x", 32))
	// Trace of (err signature, latency) for attempts 1..6 of save r/7.
	trace := func(noise bool) []string {
		fs := store.NewFaultStore(store.NewMemStore(), plan)
		var out []string
		for i := 0; i < 6; i++ {
			if noise {
				// Interleave unrelated traffic that sequential keying would
				// be perturbed by.
				fs.Save("other", uint64(i), payload)
				fs.Load("r", 3)
				fs.List("r")
			}
			err := fs.Save("r", 7, payload)
			out = append(out, errSig(err)+fmt.Sprint(fs.LastOp("r").Latency))
		}
		return out
	}
	quiet, noisy := trace(false), trace(true)
	if !reflect.DeepEqual(quiet, noisy) {
		t.Fatalf("logical outcomes perturbed by interleaved traffic:\nquiet %v\nnoisy %v", quiet, noisy)
	}
	// A fresh instance resets attempt counters: its first save of r/7
	// matches attempt 1, not attempt 7.
	fresh := trace(false)
	if fresh[0] != quiet[0] {
		t.Fatalf("fresh injector attempt 1 differs: %v vs %v", fresh[0], quiet[0])
	}
	if got := len(quiet); got != 6 {
		t.Fatalf("trace length %d", got)
	}
}

// TestQuotaStore pins the retained-state quota semantics: replace
// charges the delta, delete refunds, both budget axes reject with
// ErrQuota, accounting is billing-level (inner failures cost nothing),
// tenants group by the mapping, and the ledger survives wrapper
// rebuilds.
func TestQuotaStore(t *testing.T) {
	t.Run("bytes-replace-delete", func(t *testing.T) {
		ledger := store.NewQuotaLedger(store.Quota{MaxBytes: 10}, nil)
		qs := store.NewQuotaStore(ledger, store.NewMemStore())
		if err := qs.Save("r", 1, []byte("123456")); err != nil {
			t.Fatal(err)
		}
		if err := qs.Save("r", 2, []byte("12345")); !errors.Is(err, store.ErrQuota) {
			t.Fatalf("11 bytes admitted against budget 10: %v", err)
		}
		// Replacing seq 1 with a larger payload charges only the delta.
		if err := qs.Save("r", 1, []byte("1234567890")); err != nil {
			t.Fatalf("replace within budget rejected: %v", err)
		}
		if b, n := ledger.Used("r"); b != 10 || n != 1 {
			t.Fatalf("Used = %d bytes, %d checkpoints; want 10, 1", b, n)
		}
		if err := qs.Delete("r", 1); err != nil {
			t.Fatal(err)
		}
		if b, n := ledger.Used("r"); b != 0 || n != 0 {
			t.Fatalf("delete did not refund: %d bytes, %d checkpoints", b, n)
		}
		if err := qs.Save("r", 2, []byte("12345")); err != nil {
			t.Fatalf("post-refund save rejected: %v", err)
		}
	})
	t.Run("checkpoint-count", func(t *testing.T) {
		ledger := store.NewQuotaLedger(store.Quota{MaxCheckpoints: 2}, nil)
		qs := store.NewQuotaStore(ledger, store.NewMemStore())
		for seq := uint64(1); seq <= 2; seq++ {
			if err := qs.Save("r", seq, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		if err := qs.Save("r", 3, []byte("v")); !errors.Is(err, store.ErrQuota) {
			t.Fatalf("third checkpoint admitted against budget 2: %v", err)
		}
		// Overwriting a retained seq is not a new checkpoint.
		if err := qs.Save("r", 2, []byte("v2")); err != nil {
			t.Fatalf("overwrite rejected: %v", err)
		}
	})
	t.Run("billing-level", func(t *testing.T) {
		ledger := store.NewQuotaLedger(store.Quota{MaxBytes: 100}, nil)
		failing := store.NewFaultStore(store.NewMemStore(), store.FaultPlan{Seed: 1, WriteFail: 1})
		qs := store.NewQuotaStore(ledger, failing)
		if err := qs.Save("r", 1, []byte("payload")); !errors.Is(err, store.ErrInjectedWrite) {
			t.Fatalf("err = %v", err)
		}
		if b, n := ledger.Used("r"); b != 0 || n != 0 {
			t.Fatalf("failed save was billed: %d bytes, %d checkpoints", b, n)
		}
	})
	t.Run("tenant-grouping-and-ledger-persistence", func(t *testing.T) {
		tenantOf := func(run string) string { return strings.SplitN(run, "-", 2)[0] }
		ledger := store.NewQuotaLedger(store.Quota{MaxBytes: 8}, tenantOf)
		inner := store.NewMemStore()
		if err := store.NewQuotaStore(ledger, inner).Save("acme-1", 1, []byte("12345")); err != nil {
			t.Fatal(err)
		}
		// A rebuilt wrapper (fresh invocation) over the same ledger still
		// sees acme's usage through a different run of the same tenant.
		qs2 := store.NewQuotaStore(ledger, inner)
		if err := qs2.Save("acme-2", 1, []byte("12345")); !errors.Is(err, store.ErrQuota) {
			t.Fatalf("tenant budget not shared across runs/wrappers: %v", err)
		}
		if err := qs2.Save("zen-1", 1, []byte("12345")); err != nil {
			t.Fatalf("other tenant rejected: %v", err)
		}
		if b, _ := ledger.Used("acme"); b != 5 {
			t.Fatalf("Used(acme) = %d, want 5", b)
		}
	})
}
