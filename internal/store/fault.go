package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/rng"
)

// ErrInjected is wrapped by every fault the FaultStore injects, so
// callers can classify "the drill hit me" (retryable) apart from real
// I/O errors. ErrInjectedWrite and ErrInjectedRead refine it per
// operation.
var (
	ErrInjected      = errors.New("store: injected fault")
	ErrInjectedWrite = fmt.Errorf("%w: write failed", ErrInjected)
	ErrInjectedRead  = fmt.Errorf("%w: read failed", ErrInjected)
)

// FaultPlan parameterizes the deterministic fault injector. All
// probabilities are per-operation in [0, 1]; a zero plan injects
// nothing.
//
// Keyed-stream contract (the determinism guarantee): every operation —
// Save, Load, List and Delete alike — draws its injected latency and
// fault decision from a private stream derived from the plan seed and
// the operation's key, never from shared mutable stream state. The
// draw order within an operation is fixed: latency first, then the
// fault decision, then any fault-shaping draws (torn-write cut point,
// lose-old victim). Two keying modes exist:
//
//   - Sequential (LogicalKeys = false, the default): operation i of the
//     injector's lifetime draws from Keyed(i). The same operation
//     SEQUENCE always injects the same faults, which is what the
//     kill/resume drills of a single executor need.
//
//   - Logical (LogicalKeys = true): an operation draws from a stream
//     keyed by (op kind, run, seq, attempt), where attempt counts how
//     many times this exact (kind, run, seq) operation has been issued
//     to this injector instance. The injected outcome is then a pure
//     function of the logical operation, independent of how operations
//     from different runs interleave — the mode required when several
//     tenants share one injector concurrently, and when a resumed run
//     must re-observe the same outcomes a fresh injector dealt the
//     uninterrupted run (process restarts reset the attempt counters,
//     exactly like the uninterrupted run's first encounter).
type FaultPlan struct {
	// Seed drives every injection decision.
	Seed uint64
	// WriteFail is the probability a Save fails cleanly: the error is
	// reported and nothing is persisted. Models a full disk or a lost
	// connection caught before commit.
	WriteFail float64
	// TornWrite is the probability a Save persists only a prefix of the
	// payload AND reports failure. Models a crash mid-write on a store
	// without atomic rename: a corrupt artifact now occupies the slot.
	// Detection is the codec layer's job — compose Checked(FaultStore).
	TornWrite float64
	// LoseOld is the probability that a successful Save is followed by
	// the silent loss of one previously persisted checkpoint of the same
	// run (partial-state loss: retention bugs, eviction, bit rot taking
	// out an old file). The executor must then fall back further on
	// resume.
	LoseOld float64
	// ReadFail is the probability a Load fails transiently.
	ReadFail float64
	// MeanLatency, when positive, adds an Exp-distributed virtual
	// latency to EVERY operation — Save, Load, List and Delete —
	// accumulated in Stats.Latency and attributable per run through
	// RunLatency. Nothing sleeps: the executor folds the total into its
	// virtual clock accounting if it cares, and tests read it to pin
	// determinism.
	MeanLatency float64
	// LogicalKeys selects logical (per-operation identity) keying over
	// sequential (lifetime op index) keying; see the type comment.
	LogicalKeys bool
}

// FaultStats counts what the injector did.
type FaultStats struct {
	// Ops is the number of operations seen (Save, Load, List, Delete).
	Ops uint64
	// WriteFails, TornWrites, LostOld and ReadFails count injections.
	WriteFails, TornWrites, LostOld, ReadFails uint64
	// Latency is the total injected virtual latency across all runs.
	Latency float64
}

// Fault-stream op kinds, part of the logical keying contract: each kind
// keys a disjoint stream family so loads can never perturb save
// outcomes.
const (
	opSave uint64 = iota + 1
	opLoad
	opList
	opDelete
)

// FaultStore wraps an inner store with deterministic, seeded fault
// injection. Compose as Checked(NewFaultStore(inner, plan)): the fault
// layer tears sealed frames, the codec layer detects the tears.
type FaultStore struct {
	inner Store
	plan  FaultPlan

	mu       sync.Mutex
	ops      uint64
	stats    FaultStats
	runLat   map[string]float64
	runOps   map[string]uint64
	lastLat  map[string]float64
	attempts map[faultOpKey]uint64
}

// RunOp is a per-run operation observation: Ops counts the run's
// operations that reached this injector, Latency is the injected
// latency of the most recent one — the EXACT drawn value, not a
// difference of accumulated sums. Executors that fold injected latency
// into a replayable virtual clock must consume these exact values:
// differencing a cumulative float total loses ulps depending on what
// the accumulator held before, which is invisible to the eye and fatal
// to bit-identical replay.
type RunOp struct {
	Ops     uint64
	Latency float64
}

// faultOpKey identifies a logical operation for attempt counting.
type faultOpKey struct {
	kind uint64
	run  string
	seq  uint64
}

// NewFaultStore wraps inner with the given fault plan.
func NewFaultStore(inner Store, plan FaultPlan) *FaultStore {
	return &FaultStore{
		inner:    inner,
		plan:     plan,
		runLat:   make(map[string]float64),
		runOps:   make(map[string]uint64),
		lastLat:  make(map[string]float64),
		attempts: make(map[faultOpKey]uint64),
	}
}

// Stats returns a snapshot of the injection counters.
func (f *FaultStore) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// RunLatency returns the total injected virtual latency attributed to
// one run (informational; concurrent tenants on a shared injector never
// see each other's stalls here).
func (f *FaultStore) RunLatency(run string) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runLat[run]
}

// LastOp returns the run's operation count and the exact injected
// latency of its most recent operation; see RunOp for why executors
// must read this rather than differencing RunLatency.
func (f *FaultStore) LastOp(run string) RunOp {
	f.mu.Lock()
	defer f.mu.Unlock()
	return RunOp{Ops: f.runOps[run], Latency: f.lastLat[run]}
}

// Unwrap exposes the inner store for capability discovery.
func (f *FaultStore) Unwrap() Store { return f.inner }

// hashRun folds a run ID into key material for logical streams.
func hashRun(run string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(run))
	return h.Sum64()
}

// opStream returns the keyed stream for an operation, advancing the
// relevant counter (lifetime index or per-operation attempt count).
func (f *FaultStore) opStream(kind uint64, run string, seq uint64) *rng.Stream {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	f.stats.Ops++
	f.runOps[run]++
	f.lastLat[run] = 0
	if !f.plan.LogicalKeys {
		return rng.New(f.plan.Seed).Keyed(f.ops)
	}
	k := faultOpKey{kind: kind, run: run, seq: seq}
	f.attempts[k]++
	return rng.New(f.plan.Seed).Keyed(kind).Keyed(hashRun(run)).Keyed(seq).Keyed(f.attempts[k])
}

// lat draws and accumulates injected latency for run. Draw order within
// an operation is fixed (latency first, then the fault decision), which
// is part of the determinism contract.
func (f *FaultStore) lat(s *rng.Stream, run string) {
	if f.plan.MeanLatency <= 0 {
		return
	}
	d := s.ExpFloat64() * f.plan.MeanLatency
	f.mu.Lock()
	f.stats.Latency += d
	f.runLat[run] += d
	f.lastLat[run] = d
	f.mu.Unlock()
}

// Save injects write faults around the inner Save.
func (f *FaultStore) Save(run string, seq uint64, payload []byte) error {
	s := f.opStream(opSave, run, seq)
	f.lat(s, run)
	u := s.Float64()
	switch {
	case u < f.plan.WriteFail:
		f.count(func(st *FaultStats) { st.WriteFails++ })
		return fmt.Errorf("save %s/%d: %w", run, seq, ErrInjectedWrite)
	case u < f.plan.WriteFail+f.plan.TornWrite:
		// Persist a strict prefix — at least one byte short, possibly
		// almost nothing — and report failure, as a mid-write crash
		// would.
		cut := 0
		if len(payload) > 1 {
			cut = 1 + s.IntN(len(payload)-1)
		}
		if err := f.inner.Save(run, seq, payload[:cut]); err != nil {
			return err
		}
		f.count(func(st *FaultStats) { st.TornWrites++ })
		return fmt.Errorf("save %s/%d: torn after %d of %d bytes: %w", run, seq, cut, len(payload), ErrInjectedWrite)
	}
	if err := f.inner.Save(run, seq, payload); err != nil {
		return err
	}
	if s.Float64() < f.plan.LoseOld {
		f.loseOld(run, seq, s)
	}
	return nil
}

// loseOld deletes one keyed-chosen checkpoint with sequence below seq.
func (f *FaultStore) loseOld(run string, seq uint64, s *rng.Stream) {
	seqs, err := f.inner.List(run)
	if err != nil {
		return
	}
	older := seqs[:0]
	for _, q := range seqs {
		if q < seq {
			older = append(older, q)
		}
	}
	if len(older) == 0 {
		return
	}
	victim := older[s.IntN(len(older))]
	if f.inner.Delete(run, victim) == nil {
		f.count(func(st *FaultStats) { st.LostOld++ })
	}
}

// Load injects read faults around the inner Load.
func (f *FaultStore) Load(run string, seq uint64) ([]byte, error) {
	s := f.opStream(opLoad, run, seq)
	f.lat(s, run)
	if s.Float64() < f.plan.ReadFail {
		f.count(func(st *FaultStats) { st.ReadFails++ })
		return nil, fmt.Errorf("load %s/%d: %w", run, seq, ErrInjectedRead)
	}
	return f.inner.Load(run, seq)
}

// List pays injected latency like every other operation (enumeration
// round-trips to the store too); the interesting failure modes (missing
// or corrupt entries) are injected through Save/Load already. List
// operations key with seq 0.
func (f *FaultStore) List(run string) ([]uint64, error) {
	s := f.opStream(opList, run, 0)
	f.lat(s, run)
	return f.inner.List(run)
}

// Delete pays injected latency; no faults are injected (deletion
// failure modes are covered by LoseOld on the save path).
func (f *FaultStore) Delete(run string, seq uint64) error {
	s := f.opStream(opDelete, run, seq)
	f.lat(s, run)
	return f.inner.Delete(run, seq)
}

func (f *FaultStore) count(fn func(*FaultStats)) {
	f.mu.Lock()
	fn(&f.stats)
	f.mu.Unlock()
}

var _ Store = (*FaultStore)(nil)
