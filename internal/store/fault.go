package store

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/rng"
)

// ErrInjected is wrapped by every fault the FaultStore injects, so
// callers can classify "the drill hit me" (retryable) apart from real
// I/O errors. ErrInjectedWrite and ErrInjectedRead refine it per
// operation.
var (
	ErrInjected      = errors.New("store: injected fault")
	ErrInjectedWrite = fmt.Errorf("%w: write failed", ErrInjected)
	ErrInjectedRead  = fmt.Errorf("%w: read failed", ErrInjected)
)

// FaultPlan parameterizes the deterministic fault injector. All
// probabilities are per-operation in [0, 1]; a zero plan injects
// nothing. The same (plan, operation sequence) always injects the same
// faults: each operation draws from a stream keyed by its index alone,
// so determinism survives any amount of surrounding concurrency or
// retry logic.
type FaultPlan struct {
	// Seed drives every injection decision.
	Seed uint64
	// WriteFail is the probability a Save fails cleanly: the error is
	// reported and nothing is persisted. Models a full disk or a lost
	// connection caught before commit.
	WriteFail float64
	// TornWrite is the probability a Save persists only a prefix of the
	// payload AND reports failure. Models a crash mid-write on a store
	// without atomic rename: a corrupt artifact now occupies the slot.
	// Detection is the codec layer's job — compose Checked(FaultStore).
	TornWrite float64
	// LoseOld is the probability that a successful Save is followed by
	// the silent loss of one previously persisted checkpoint of the same
	// run (partial-state loss: retention bugs, eviction, bit rot taking
	// out an old file). The executor must then fall back further on
	// resume.
	LoseOld float64
	// ReadFail is the probability a Load fails transiently.
	ReadFail float64
	// MeanLatency, when positive, adds an Exp-distributed virtual
	// latency to every operation, accumulated in Stats.Latency. Nothing
	// sleeps: the executor folds the total into its virtual clock
	// accounting if it cares, and tests read it to pin determinism.
	MeanLatency float64
}

// FaultStats counts what the injector did.
type FaultStats struct {
	// Ops is the number of Save/Load operations seen.
	Ops uint64
	// WriteFails, TornWrites, LostOld and ReadFails count injections.
	WriteFails, TornWrites, LostOld, ReadFails uint64
	// Latency is the total injected virtual latency.
	Latency float64
}

// FaultStore wraps an inner store with deterministic, seeded fault
// injection. Compose as Checked(NewFaultStore(inner, plan)): the fault
// layer tears sealed frames, the codec layer detects the tears.
type FaultStore struct {
	inner Store
	plan  FaultPlan

	mu    sync.Mutex
	ops   uint64
	stats FaultStats
}

// NewFaultStore wraps inner with the given fault plan.
func NewFaultStore(inner Store, plan FaultPlan) *FaultStore {
	return &FaultStore{inner: inner, plan: plan}
}

// Stats returns a snapshot of the injection counters.
func (f *FaultStore) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// opStream returns the keyed stream for the next operation and the
// operation's index, advancing the counter.
func (f *FaultStore) opStream() *rng.Stream {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	f.stats.Ops++
	return rng.New(f.plan.Seed).Keyed(f.ops)
}

// lat draws and accumulates injected latency. Draw order within an
// operation is fixed (latency first, then the fault decision), which is
// part of the determinism contract.
func (f *FaultStore) lat(s *rng.Stream) {
	if f.plan.MeanLatency <= 0 {
		return
	}
	d := s.ExpFloat64() * f.plan.MeanLatency
	f.mu.Lock()
	f.stats.Latency += d
	f.mu.Unlock()
}

// Save injects write faults around the inner Save.
func (f *FaultStore) Save(run string, seq uint64, payload []byte) error {
	s := f.opStream()
	f.lat(s)
	u := s.Float64()
	switch {
	case u < f.plan.WriteFail:
		f.count(func(st *FaultStats) { st.WriteFails++ })
		return fmt.Errorf("save %s/%d: %w", run, seq, ErrInjectedWrite)
	case u < f.plan.WriteFail+f.plan.TornWrite:
		// Persist a strict prefix — at least one byte short, possibly
		// almost nothing — and report failure, as a mid-write crash
		// would.
		cut := 0
		if len(payload) > 1 {
			cut = 1 + s.IntN(len(payload)-1)
		}
		if err := f.inner.Save(run, seq, payload[:cut]); err != nil {
			return err
		}
		f.count(func(st *FaultStats) { st.TornWrites++ })
		return fmt.Errorf("save %s/%d: torn after %d of %d bytes: %w", run, seq, cut, len(payload), ErrInjectedWrite)
	}
	if err := f.inner.Save(run, seq, payload); err != nil {
		return err
	}
	if s.Float64() < f.plan.LoseOld {
		f.loseOld(run, seq, s)
	}
	return nil
}

// loseOld deletes one keyed-chosen checkpoint with sequence below seq.
func (f *FaultStore) loseOld(run string, seq uint64, s *rng.Stream) {
	seqs, err := f.inner.List(run)
	if err != nil {
		return
	}
	older := seqs[:0]
	for _, q := range seqs {
		if q < seq {
			older = append(older, q)
		}
	}
	if len(older) == 0 {
		return
	}
	victim := older[s.IntN(len(older))]
	if f.inner.Delete(run, victim) == nil {
		f.count(func(st *FaultStats) { st.LostOld++ })
	}
}

// Load injects read faults around the inner Load.
func (f *FaultStore) Load(run string, seq uint64) ([]byte, error) {
	s := f.opStream()
	f.lat(s)
	if s.Float64() < f.plan.ReadFail {
		f.count(func(st *FaultStats) { st.ReadFails++ })
		return nil, fmt.Errorf("load %s/%d: %w", run, seq, ErrInjectedRead)
	}
	return f.inner.Load(run, seq)
}

// List delegates uninstrumented: enumeration is resume bookkeeping, and
// the interesting failure modes (missing or corrupt entries) are
// injected through Save/Load already.
func (f *FaultStore) List(run string) ([]uint64, error) { return f.inner.List(run) }

// Delete delegates uninstrumented.
func (f *FaultStore) Delete(run string, seq uint64) error { return f.inner.Delete(run, seq) }

func (f *FaultStore) count(fn func(*FaultStats)) {
	f.mu.Lock()
	fn(&f.stats)
	f.mu.Unlock()
}

var _ Store = (*FaultStore)(nil)
