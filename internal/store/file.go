package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fsx"
)

// FileStore is the crash-durable Store: one directory per run, one file
// per checkpoint, every write through fsx.AtomicWriteFile (temp, fsync,
// rename, directory fsync). After Save returns, the checkpoint survives
// a host crash; a crash *during* Save leaves either the previous
// checkpoint content or an orphaned temp file the codec layer never
// mistakes for a checkpoint.
type FileStore struct {
	root string
}

// ckptExt names checkpoint files: ckpt-<seq 20 digits>.bin, zero-padded
// so lexical order is numeric order.
const ckptExt = ".bin"

// NewFileStore returns a file store rooted at dir, creating it if
// needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileStore{root: dir}, nil
}

// Root returns the store's root directory.
func (f *FileStore) Root() string { return f.root }

func (f *FileStore) path(run string, seq uint64) string {
	return filepath.Join(f.root, run, fmt.Sprintf("ckpt-%020d%s", seq, ckptExt))
}

// Save durably persists payload as (run, seq).
func (f *FileStore) Save(run string, seq uint64, payload []byte) error {
	if err := validRun(run); err != nil {
		return err
	}
	dir := filepath.Join(f.root, run)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return fsx.AtomicWriteFile(f.path(run, seq), payload)
}

// Load reads checkpoint (run, seq).
func (f *FileStore) Load(run string, seq uint64) ([]byte, error) {
	if err := validRun(run); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(f.path(run, seq))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	return data, err
}

// List returns run's persisted sequence numbers, ascending. Temp files
// and anything else that does not parse as a checkpoint name are
// ignored — they are in-flight writes or debris, not checkpoints.
func (f *FileStore) List(run string) ([]uint64, error) {
	if err := validRun(run); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(f.root, run))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ckptExt) {
			continue
		}
		seq, err := strconv.ParseUint(name[len("ckpt-"):len(name)-len(ckptExt)], 10, 64)
		if err != nil {
			continue
		}
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Delete removes checkpoint (run, seq) and makes the removal durable.
func (f *FileStore) Delete(run string, seq uint64) error {
	if err := validRun(run); err != nil {
		return err
	}
	err := os.Remove(f.path(run, seq))
	if errors.Is(err, fs.ErrNotExist) {
		return ErrNotFound
	}
	if err != nil {
		return err
	}
	return fsx.SyncDir(filepath.Join(f.root, run))
}

var _ Store = (*FileStore)(nil)
