package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Sealed-frame layout (little-endian):
//
//	magic "CHKPTBX1" | schema u32 | payloadLen u64 | payload | crc32 u32
//
// The CRC (IEEE) covers everything before it — magic, schema, length and
// payload — so any truncation or bit flip anywhere in the frame fails
// verification. The schema version is the *store codec's* version; the
// executor keeps its own payload schema version inside the payload.
const (
	codecMagic  = "CHKPTBX1"
	codecSchema = 1
	// frameOverhead is the sealed size minus the payload size.
	frameOverhead = len(codecMagic) + 4 + 8 + 4
	// maxPayload bounds decoded payload allocations so a corrupt length
	// field cannot demand gigabytes.
	maxPayload = 1 << 30
)

// seal wraps payload in a checksummed, schema-versioned frame.
func seal(payload []byte) []byte {
	buf := make([]byte, 0, len(payload)+frameOverhead)
	buf = append(buf, codecMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, codecSchema)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// open verifies a sealed frame and returns its payload. Every failure
// mode wraps ErrCorrupt: the caller's contract is "good payload or
// ErrCorrupt", nothing finer.
func open(sealed []byte) ([]byte, error) {
	if len(sealed) < frameOverhead {
		return nil, fmt.Errorf("%w: frame truncated to %d bytes", ErrCorrupt, len(sealed))
	}
	if string(sealed[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	p := len(codecMagic)
	if v := binary.LittleEndian.Uint32(sealed[p:]); v != codecSchema {
		return nil, fmt.Errorf("%w: unsupported codec schema %d", ErrCorrupt, v)
	}
	p += 4
	n := binary.LittleEndian.Uint64(sealed[p:])
	if n > maxPayload || int(n) != len(sealed)-frameOverhead {
		return nil, fmt.Errorf("%w: payload length %d does not match frame size %d", ErrCorrupt, n, len(sealed))
	}
	p += 8
	body := sealed[:p+int(n)]
	sum := binary.LittleEndian.Uint32(sealed[p+int(n):])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	out := make([]byte, n)
	copy(out, sealed[p:])
	return out, nil
}

// checked layers the codec over an inner store.
type checked struct {
	inner Store
}

// Checked wraps a store so that every Save seals its payload and every
// Load verifies the frame, returning ErrCorrupt on damage. Place it
// OUTSIDE any fault-injecting decorator: faults then tear the sealed
// bytes, and Checked is what detects the tear — the same layering as
// production, where the filesystem is the fault injector.
func Checked(inner Store) Store {
	return checked{inner: inner}
}

func (c checked) Save(run string, seq uint64, payload []byte) error {
	return c.inner.Save(run, seq, seal(payload))
}

func (c checked) Load(run string, seq uint64) ([]byte, error) {
	sealed, err := c.inner.Load(run, seq)
	if err != nil {
		return nil, err
	}
	return open(sealed)
}

func (c checked) List(run string) ([]uint64, error) { return c.inner.List(run) }

// Unwrap exposes the inner store for capability discovery.
func (c checked) Unwrap() Store { return c.inner }

func (c checked) Delete(run string, seq uint64) error { return c.inner.Delete(run, seq) }
