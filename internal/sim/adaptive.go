package sim

// Adaptive comparator campaigns: instead of spending a fixed replication
// budget on every candidate, the campaign proceeds in geometric rounds
// and stops sampling a candidate as soon as its paired-delta confidence
// interval against the baseline is *decided* — narrower than the target
// width, or excluding zero (the pair is already statistically
// separated). Replications concentrate on the pairs that are still
// indistinguishable, which is where CRN variance reduction needs help;
// clearly-different pairs separate after the first round and stop
// costing anything.
//
// Each round is a sharded campaign over the still-active candidates,
// salted with a distinct Round so extension rounds draw fresh
// randomness; per-candidate aggregates merge across rounds in round
// order, so the whole procedure is deterministic for a given option set.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// Candidate decisions reported by AdaptiveResult.
const (
	// DecisionBaseline marks candidate 0, which samples as long as any
	// comparison is undecided.
	DecisionBaseline = "baseline"
	// DecisionConverged: the delta CI reached the target width without
	// excluding zero — the pair is indistinguishable at this precision.
	DecisionConverged = "converged"
	// DecisionSeparated: the delta CI excludes zero — the pair is
	// decided, no further precision needed.
	DecisionSeparated = "separated"
	// DecisionBudget: MaxRuns replications were spent with the CI still
	// wide and straddling zero.
	DecisionBudget = "budget"
)

// AdaptiveOptions tunes the stopping rule.
type AdaptiveOptions struct {
	// TargetWidth is the half-width of the paired-delta CI below which
	// a pair counts as converged. Must be positive.
	TargetWidth float64
	// Confidence is the CI level (default 0.99).
	Confidence float64
	// InitialRuns is the first round's replication count (default 4096,
	// clamped to MaxRuns).
	InitialRuns int
	// Growth multiplies the round size each round (default 2).
	Growth float64
	// MaxRuns bounds the replications spent per candidate. Must be
	// positive.
	MaxRuns int
}

func (ao AdaptiveOptions) resolve() (AdaptiveOptions, error) {
	if !(ao.TargetWidth > 0) {
		return ao, fmt.Errorf("sim: adaptive target width must be positive, got %v", ao.TargetWidth)
	}
	if ao.MaxRuns <= 0 {
		return ao, fmt.Errorf("sim: adaptive MaxRuns must be positive, got %d", ao.MaxRuns)
	}
	if ao.Confidence == 0 {
		ao.Confidence = 0.99
	}
	if !(ao.Confidence > 0 && ao.Confidence < 1) {
		return ao, fmt.Errorf("sim: adaptive confidence must be in (0, 1), got %v", ao.Confidence)
	}
	if ao.InitialRuns <= 0 {
		ao.InitialRuns = 4096
	}
	if ao.InitialRuns > ao.MaxRuns {
		ao.InitialRuns = ao.MaxRuns
	}
	if ao.Growth == 0 {
		ao.Growth = 2
	}
	if ao.Growth < 1 {
		return ao, fmt.Errorf("sim: adaptive growth must be ≥ 1, got %v", ao.Growth)
	}
	return ao, nil
}

// AdaptiveResult reports an adaptive comparator campaign.
type AdaptiveResult struct {
	// Results, Delta and Digests aggregate per candidate exactly as in
	// CampaignResult, except candidates stop accumulating once decided
	// — compare Ns via RunsPerCandidate.
	Results []MCResult
	Delta   []stats.Summary
	Digests []*stats.TDigest
	// RunsPerCandidate is the replications each candidate consumed.
	RunsPerCandidate []int
	// Decision classifies each candidate: DecisionBaseline for index 0,
	// else DecisionConverged, DecisionSeparated or DecisionBudget.
	Decision []string
	// Widths is the final CI half-width of each candidate's delta
	// against the baseline (0 for the baseline itself).
	Widths []float64
	// Rounds is the number of rounds executed.
	Rounds int
	// Spent is the total replications executed across candidates —
	// the campaign's actual cost.
	Spent int
	// FixedSpent estimates what a fixed-budget design targeting the
	// same CI width on every pair would cost. A fixed design cannot
	// drop decided pairs, so it must size its per-candidate budget for
	// the pair needing the most replications to reach TargetWidth —
	// extrapolated as n·(width/target)² from each pair's measured
	// width at n replications, capped at MaxRuns — and pay that for
	// every candidate. Spent/FixedSpent is the adaptive saving; the
	// savings come precisely from not narrowing pairs whose CI already
	// excludes zero.
	FixedSpent int
}

// CampaignPlansAdaptive runs a sharded CRN comparator campaign with the
// adaptive stopping rule. Candidate 0 is the baseline; so.Runs is
// ignored (the rule decides), so.Round must be 0 (rounds own the salt)
// and so.SpillDir must be empty — adaptive campaigns re-plan every
// round, which a spill's fixed schedule cannot represent.
func CampaignPlansAdaptive(plans [][]core.Segment, factory ProcessFactory, so ShardOptions, ao AdaptiveOptions) (AdaptiveResult, error) {
	ao, err := ao.resolve()
	if err != nil {
		return AdaptiveResult{}, err
	}
	if len(plans) < 2 {
		return AdaptiveResult{}, fmt.Errorf("sim: adaptive campaign needs a baseline and at least one comparator, got %d plans", len(plans))
	}
	if so.SpillDir != "" {
		return AdaptiveResult{}, fmt.Errorf("sim: adaptive campaigns are not spillable — the round schedule is data-dependent; spill fixed-budget campaigns instead")
	}
	if so.Round != 0 {
		return AdaptiveResult{}, fmt.Errorf("sim: adaptive campaigns own the round salt; ShardOptions.Round must be 0, got %d", so.Round)
	}

	cands := len(plans)
	out := AdaptiveResult{
		Results:          make([]MCResult, cands),
		Delta:            make([]stats.Summary, cands),
		Digests:          make([]*stats.TDigest, cands),
		RunsPerCandidate: make([]int, cands),
		Decision:         make([]string, cands),
		Widths:           make([]float64, cands),
	}
	for i := range out.Digests {
		out.Digests[i] = stats.NewTDigest(stats.DefaultTDigestCompression)
	}
	out.Decision[0] = DecisionBaseline

	active := make([]int, 0, cands-1) // candidate indices still sampling
	for i := 1; i < cands; i++ {
		active = append(active, i)
	}
	roundRuns := ao.InitialRuns
	for len(active) > 0 {
		// Assemble the round's plan set: baseline + active candidates.
		roundPlans := make([][]core.Segment, 0, len(active)+1)
		roundPlans = append(roundPlans, plans[0])
		for _, i := range active {
			roundPlans = append(roundPlans, plans[i])
		}
		rso := so
		rso.Runs = roundRuns
		rso.Round = uint64(out.Rounds + 1)
		if rso.Shards > rso.Runs {
			rso.Shards = 1
		}
		res, err := CampaignPlansSharded(roundPlans, factory, rso)
		if err != nil {
			return AdaptiveResult{}, err
		}
		out.Rounds++
		out.Spent += roundRuns * (len(active) + 1)

		// Fold the round into the per-candidate accumulators (round
		// order: deterministic).
		fold := func(dst, src int) {
			out.Results[dst].merge(res.Results[src])
			out.Delta[dst].Merge(res.Delta[src])
			out.Digests[dst].Merge(res.Digests[src])
			out.RunsPerCandidate[dst] += roundRuns
		}
		fold(0, 0)
		for j, i := range active {
			fold(i, j+1)
		}

		// Apply the stopping rule.
		still := active[:0]
		for _, i := range active {
			d := &out.Delta[i]
			width := d.CI(ao.Confidence)
			out.Widths[i] = width
			mean := d.Mean()
			switch {
			case width <= ao.TargetWidth:
				out.Decision[i] = DecisionConverged
			case mean > width || mean < -width:
				out.Decision[i] = DecisionSeparated
			case out.RunsPerCandidate[i] >= ao.MaxRuns:
				out.Decision[i] = DecisionBudget
			default:
				still = append(still, i)
			}
		}
		active = still
		next := int(float64(roundRuns) * ao.Growth)
		if next <= roundRuns {
			next = roundRuns + 1
		}
		roundRuns = next
		if len(active) > 0 {
			if spent := out.RunsPerCandidate[active[0]]; spent+roundRuns > ao.MaxRuns {
				roundRuns = ao.MaxRuns - spent
			}
		}
	}
	// The fixed-budget equivalent sizes every candidate's budget for
	// the pair that needs the most replications to reach TargetWidth
	// (CI width shrinks as 1/√n, so the requirement extrapolates as
	// n·(width/target)²), capped at MaxRuns like any committed budget.
	fixedRuns := 0
	for i := 1; i < cands; i++ {
		need := out.RunsPerCandidate[i]
		if w := out.Widths[i]; w > ao.TargetWidth {
			ratio := w / ao.TargetWidth
			est := float64(need) * ratio * ratio
			if est > float64(ao.MaxRuns) {
				need = ao.MaxRuns
			} else {
				need = int(math.Ceil(est))
			}
		}
		if need > fixedRuns {
			fixedRuns = need
		}
	}
	out.FixedSpent = fixedRuns * cands
	return out, nil
}
