package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/stats"
)

// campaignPlans builds two nearby candidate plans over the same 30-task
// chain: checkpoint every 2 tasks vs every 3.
func campaignPlans() [][]core.Segment {
	mk := func(every int) []core.Segment {
		var segs []core.Segment
		const tasks, w, c = 30, 2.0, 0.5
		for start := 0; start < tasks; start += every {
			n := every
			if start+n > tasks {
				n = tasks - start
			}
			segs = append(segs, core.Segment{Work: w * float64(n), Checkpoint: c, Recovery: c})
		}
		return segs
	}
	return [][]core.Segment{mk(2), mk(3)}
}

// TestCampaignIdenticalCandidates pins the CRN coupling: two identical
// plans see the same environment, so every paired delta is exactly zero
// and the two aggregates are bit-identical.
func TestCampaignIdenticalCandidates(t *testing.T) {
	plans := campaignPlans()
	res, err := CampaignPlans([][]core.Segment{plans[0], plans[0]},
		ExponentialFactory(0.05), Options{Downtime: 0.5, Workers: 2}, 2000, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 2000 {
		t.Errorf("runs = %d", res.Runs)
	}
	if res.Results[0].Makespan.Mean() != res.Results[1].Makespan.Mean() {
		t.Errorf("identical candidates diverged: %v vs %v",
			res.Results[0].Makespan.Mean(), res.Results[1].Makespan.Mean())
	}
	if res.Delta[1].Mean() != 0 || res.Delta[1].Variance() != 0 {
		t.Errorf("identical candidates have nonzero delta: mean %v var %v",
			res.Delta[1].Mean(), res.Delta[1].Variance())
	}
	if res.Delta[0].Mean() != 0 {
		t.Errorf("Delta[0] must be identically zero, got %v", res.Delta[0].Mean())
	}
}

// TestCampaignMatchesManualReplay pins the campaign's exact semantics:
// with one worker it must be draw-for-draw identical to hand-rolling the
// public RecordedTrace machinery — factory once, reset per replication,
// every candidate replayed through a cursor in order.
func TestCampaignMatchesManualReplay(t *testing.T) {
	plans := campaignPlans()
	const runs = 800
	weib, err := failure.NewWeibull(0.7, 30)
	if err != nil {
		t.Fatal(err)
	}
	factory := SuperposedFactory(weib, 4, failure.RejuvenateFailedOnly)
	opts := Options{Downtime: 0.5, Workers: 1}

	// Manual replay, mirroring campaign's single-worker loop (including
	// the initial seed.Split the worker partition performs).
	var manual [2][]float64
	r := rng.New(21).Split()
	src := factory(r)
	trace := failure.NewRecordedTrace(src)
	cursor := trace.Cursor()
	for rep := 0; rep < runs; rep++ {
		if rep > 0 {
			trace.Reset()
		}
		for cand := range plans {
			cursor.Reset()
			rs, err := Run(plans[cand], cursor, opts)
			if err != nil {
				t.Fatal(err)
			}
			manual[cand] = append(manual[cand], rs.Makespan)
		}
	}

	res, err := CampaignPlans(plans, factory, opts, runs, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	for cand := range plans {
		var want stats.Summary
		want.AddAll(manual[cand])
		if got := res.Results[cand].Makespan.Mean(); got != want.Mean() {
			t.Errorf("candidate %d: campaign mean %v, manual replay %v", cand, got, want.Mean())
		}
	}
}

// TestCampaignMarginalsMatchIndependentKS pins the statistical contract:
// each candidate's makespan marginal under CRN replay is the same
// distribution as under independent sampling — only the coupling between
// candidates changes. Verified with a two-sample KS test at α = 0.01 on
// both candidates.
func TestCampaignMarginalsMatchIndependentKS(t *testing.T) {
	plans := campaignPlans()
	const runs = 3000
	factory := ExponentialFactory(0.05)
	opts := Options{Downtime: 0.5, Workers: 1}

	// CRN marginals via the replay machinery (draw-identical to
	// CampaignPlans, per TestCampaignMatchesManualReplay).
	var crn [2][]float64
	r := rng.New(31).Split()
	src := factory(r)
	trace := failure.NewRecordedTrace(src)
	cursor := trace.Cursor()
	for rep := 0; rep < runs; rep++ {
		if rep > 0 {
			trace.Reset()
		}
		for cand := range plans {
			cursor.Reset()
			rs, err := Run(plans[cand], cursor, opts)
			if err != nil {
				t.Fatal(err)
			}
			crn[cand] = append(crn[cand], rs.Makespan)
		}
	}

	// Independent marginals: fresh environment per run per candidate.
	for cand := range plans {
		indep := make([]float64, 0, runs)
		ri := rng.New(uint64(100 + cand))
		proc := factory(ri)
		for rep := 0; rep < runs; rep++ {
			if rep > 0 {
				proc.(failure.Resettable).Reset()
			}
			rs, err := Run(plans[cand], proc, opts)
			if err != nil {
				t.Fatal(err)
			}
			indep = append(indep, rs.Makespan)
		}
		ok, d, err := stats.KSTwoSampleTest(crn[cand], indep, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("candidate %d: CRN marginal differs from independent sampling (KS D = %v)", cand, d)
		}
	}
}

// TestCampaignVarianceReduction pins the point of CRN: at equal run
// counts, the variance of the paired strategy delta is far below the
// variance of a difference of independent estimates.
func TestCampaignVarianceReduction(t *testing.T) {
	plans := campaignPlans()
	const runs = 4000
	factory := ExponentialFactory(0.05)
	opts := Options{Downtime: 0.5, Workers: 1}
	res, err := CampaignPlans(plans, factory, opts, runs, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	a, err := MonteCarlo(plans[0], factory, opts, runs, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(plans[1], factory, opts, runs, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	indepVar := a.Makespan.Variance() + b.Makespan.Variance()
	crnVar := res.Delta[1].Variance()
	if crnVar <= 0 {
		t.Fatalf("CRN delta variance %v must be positive for distinct plans", crnVar)
	}
	if crnVar > indepVar/2 {
		t.Errorf("CRN delta variance %v not meaningfully below independent %v", crnVar, indepVar)
	}
	// The paired mean must agree with the difference of independent means
	// within joint confidence intervals.
	wantDelta := b.Makespan.Mean() - a.Makespan.Mean()
	tol := res.Delta[1].CI(0.999) + a.Makespan.CI(0.999) + b.Makespan.CI(0.999)
	if math.Abs(res.Delta[1].Mean()-wantDelta) > tol {
		t.Errorf("paired delta %v vs independent %v (tol %v)", res.Delta[1].Mean(), wantDelta, tol)
	}
}

// TestCampaignHeapScanConsistent runs the same CRN campaign on the heap
// process and the scan reference: the two are sample-identical, so the
// campaign aggregates must agree to ulp accuracy (bit-exactly at p = 1).
func TestCampaignHeapScanConsistent(t *testing.T) {
	plans := campaignPlans()
	weib, err := failure.NewWeibull(0.7, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 16} {
		opts := Options{Downtime: 0.5, Workers: 2}
		heap, err := CampaignPlans(plans, SuperposedFactory(weib, procs, failure.RejuvenateFailedOnly), opts, 600, rng.New(51))
		if err != nil {
			t.Fatal(err)
		}
		scan, err := CampaignPlans(plans, ScanFactory(weib, procs, failure.RejuvenateFailedOnly), opts, 600, rng.New(51))
		if err != nil {
			t.Fatal(err)
		}
		for cand := range plans {
			hm, sm := heap.Results[cand].Makespan.Mean(), scan.Results[cand].Makespan.Mean()
			if procs == 1 {
				if hm != sm {
					t.Errorf("p=1 cand %d: heap %v != scan %v (must be bit-exact)", cand, hm, sm)
				}
			} else if math.Abs(hm-sm) > 1e-9*sm {
				t.Errorf("p=%d cand %d: heap %v vs scan %v", procs, cand, hm, sm)
			}
		}
	}
}

// nonResettable hides Reset from a process, forcing the fallback path.
type nonResettable struct{ p failure.Process }

func (n nonResettable) NextFailure() float64 { return n.p.NextFailure() }
func (n nonResettable) ObserveFailure()      { n.p.ObserveFailure() }
func (n nonResettable) Advance(dt float64)   { n.p.Advance(dt) }
func (n nonResettable) Rate() float64        { return n.p.Rate() }

// TestCampaignNonResettableFactory exercises the factory-per-replication
// fallback.
func TestCampaignNonResettableFactory(t *testing.T) {
	plans := campaignPlans()
	factory := func(r *rng.Stream) failure.Process {
		return nonResettable{failure.NewExponentialProcess(0.05, r)}
	}
	res, err := CampaignPlans(plans, factory, Options{Downtime: 0.5, Workers: 1}, 300, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 300 {
		t.Errorf("runs = %d", res.Runs)
	}
	if res.Delta[1].Variance() <= 0 {
		t.Errorf("delta variance %v; fallback replications look degenerate", res.Delta[1].Variance())
	}
}

// TestCampaignPolicies runs the online-policy variant: a static policy
// and a work-threshold policy over one recorded environment set.
func TestCampaignPolicies(t *testing.T) {
	cp := onlineChain(t, 12, 0.05, 0.25)
	res, err := core.SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	pol := []Policy{
		StaticPolicy{CheckpointAfter: res.CheckpointAfter, Label: "dp"},
		WorkThresholdPolicy{Threshold: 8},
	}
	out, err := CampaignPolicies(cp, pol, ExponentialFactory(cp.Model.Lambda),
		Options{Downtime: 0.25, Workers: 2}, 2000, rng.New(71))
	if err != nil {
		t.Fatal(err)
	}
	if out.Runs != 2000 {
		t.Errorf("runs = %d", out.Runs)
	}
	// The DP policy's mean must match its analytic expectation.
	if !out.Results[0].Makespan.Contains(res.Expected, 0.999) {
		t.Errorf("campaign DP mean %v ± %v vs analytic %v",
			out.Results[0].Makespan.Mean(), out.Results[0].Makespan.CI(0.999), res.Expected)
	}
	// Paired identity: Results means differ by exactly the delta mean.
	gap := out.Results[1].Makespan.Mean() - out.Results[0].Makespan.Mean()
	if math.Abs(gap-out.Delta[1].Mean()) > 1e-9*math.Abs(gap)+1e-12 {
		t.Errorf("delta mean %v inconsistent with aggregate gap %v", out.Delta[1].Mean(), gap)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := CampaignPlans(nil, ExponentialFactory(1), Options{}, 10, rng.New(1)); err == nil {
		t.Error("no candidates should fail")
	}
	if _, err := CampaignPlans(campaignPlans(), ExponentialFactory(1), Options{}, 0, rng.New(1)); err == nil {
		t.Error("zero runs should fail")
	}
	if _, err := CampaignPolicies(onlineChain(t, 3, 0.05, 0), nil, ExponentialFactory(1), Options{}, 10, rng.New(1)); err == nil {
		t.Error("no policies should fail")
	}
}

// TestCampaignDeterministicSeed: same seed and Workers reproduce the
// campaign bit-for-bit.
func TestCampaignDeterministicSeed(t *testing.T) {
	plans := campaignPlans()
	run := func() CampaignResult {
		res, err := CampaignPlans(plans, ExponentialFactory(0.05), Options{Downtime: 0.5, Workers: 3}, 999, rng.New(81))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Results[0].Makespan.Mean() != b.Results[0].Makespan.Mean() ||
		a.Delta[1].Mean() != b.Delta[1].Mean() {
		t.Error("same seed gave different campaign results")
	}
}
