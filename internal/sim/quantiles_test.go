package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestEstimateMakespanDistribution(t *testing.T) {
	segs := []core.Segment{{Work: 10, Checkpoint: 1, Recovery: 2}}
	d, err := EstimateMakespanDistribution(segs, ExponentialFactory(0.05), Options{Downtime: 0.5}, 20000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Samples != 20000 {
		t.Errorf("samples = %d", d.Samples)
	}
	// Quantiles must be ordered and bracket the failure-free minimum.
	if !(d.P50 <= d.P90 && d.P90 <= d.P99 && d.P99 <= d.P999) {
		t.Errorf("quantiles not ordered: %v %v %v %v", d.P50, d.P90, d.P99, d.P999)
	}
	if d.P50 < 11 {
		t.Errorf("median %v below failure-free time 11", d.P50)
	}
	// The failure-free outcome (no failure in 11 units at λ=0.05,
	// probability e^{−0.55} ≈ 0.58) is the median.
	if math.Abs(d.P50-11) > 1e-9 {
		t.Errorf("median %v, want exactly 11 (failure-free majority)", d.P50)
	}
	if d.Summary.Mean() <= 11 {
		t.Errorf("mean %v must exceed failure-free time", d.Summary.Mean())
	}
}

// TestEstimateMakespanDistributionStreamingCrossCheck pins the satellite
// contract: above the retention threshold the distribution switches to P²
// streaming quantiles, which consume the identical variate sequence (so
// the moments match bit-for-bit) and approximate the exact sorted
// quantiles closely.
func TestEstimateMakespanDistributionStreamingCrossCheck(t *testing.T) {
	segs := []core.Segment{{Work: 10, Checkpoint: 1, Recovery: 2}}
	const runs = 30000
	exact, err := EstimateMakespanDistribution(segs, ExponentialFactory(0.05), Options{Downtime: 0.5}, runs, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Streamed {
		t.Fatal("run count below the default retention threshold must use the exact path")
	}
	streamed, err := EstimateMakespanDistribution(segs, ExponentialFactory(0.05),
		Options{Downtime: 0.5, QuantileRetention: -1}, runs, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !streamed.Streamed {
		t.Fatal("negative retention must force the streaming path")
	}
	// Identical draws → identical moments.
	if streamed.Summary.Mean() != exact.Summary.Mean() || streamed.Summary.N() != exact.Summary.N() {
		t.Errorf("streaming path perturbed the sample: mean %v vs %v", streamed.Summary.Mean(), exact.Summary.Mean())
	}
	for _, q := range []struct {
		name         string
		got, want, p float64
	}{
		{"P50", streamed.P50, exact.P50, 0.5},
		{"P90", streamed.P90, exact.P90, 0.9},
		{"P99", streamed.P99, exact.P99, 0.99},
		{"P999", streamed.P999, exact.P999, 0.999},
	} {
		tol := 0.02*q.want + 1e-9
		if math.Abs(q.got-q.want) > tol {
			t.Errorf("%s: streamed %v vs exact %v (tol %v)", q.name, q.got, q.want, tol)
		}
	}
	// A small explicit threshold flips the path at the boundary.
	small, err := EstimateMakespanDistribution(segs, ExponentialFactory(0.05),
		Options{Downtime: 0.5, QuantileRetention: runs}, runs, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if small.Streamed {
		t.Error("runs == retention must stay exact")
	}
}

func TestEstimateMakespanDistributionValidation(t *testing.T) {
	if _, err := EstimateMakespanDistribution(nil, ExponentialFactory(1), Options{}, 0, rng.New(1)); err == nil {
		t.Error("zero runs should fail")
	}
}

func TestReport(t *testing.T) {
	cp := onlineChain(t, 8, 0.06, 0.4)
	res, err := core.SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Report(cp, res.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Expected-res.Expected) > 1e-9*res.Expected {
		t.Errorf("report expected %v ≠ DP %v", rep.Expected, res.Expected)
	}
	if rep.Checkpoints != len(res.Positions()) {
		t.Errorf("checkpoints %d ≠ %d", rep.Checkpoints, len(res.Positions()))
	}
	if rep.FailureFree <= 0 || rep.Expected < rep.FailureFree {
		t.Errorf("failure-free %v vs expected %v inconsistent", rep.FailureFree, rep.Expected)
	}
	if rep.ExpectedWaste <= 0 {
		t.Errorf("waste %v must be positive under failures", rep.ExpectedWaste)
	}
	if rep.StdDev <= 0 {
		t.Errorf("stddev %v must be positive", rep.StdDev)
	}
	if len(rep.Segments) != rep.Checkpoints {
		t.Errorf("segments %d ≠ checkpoints %d", len(rep.Segments), rep.Checkpoints)
	}
	// Consistency with the analytic variance.
	v, err := cp.MakespanVariance(res.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.StdDev*rep.StdDev-v) > 1e-9*v {
		t.Errorf("stddev² %v ≠ variance %v", rep.StdDev*rep.StdDev, v)
	}
}

func TestReportBadVector(t *testing.T) {
	cp := onlineChain(t, 4, 0.05, 0)
	if _, err := Report(cp, []bool{true}); err == nil {
		t.Error("wrong-length vector should fail")
	}
}
