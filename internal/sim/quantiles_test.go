package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestEstimateMakespanDistribution(t *testing.T) {
	segs := []core.Segment{{Work: 10, Checkpoint: 1, Recovery: 2}}
	d, err := EstimateMakespanDistribution(segs, ExponentialFactory(0.05), Options{Downtime: 0.5}, 20000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Samples != 20000 {
		t.Errorf("samples = %d", d.Samples)
	}
	// Quantiles must be ordered and bracket the failure-free minimum.
	if !(d.P50 <= d.P90 && d.P90 <= d.P99 && d.P99 <= d.P999) {
		t.Errorf("quantiles not ordered: %v %v %v %v", d.P50, d.P90, d.P99, d.P999)
	}
	if d.P50 < 11 {
		t.Errorf("median %v below failure-free time 11", d.P50)
	}
	// The failure-free outcome (no failure in 11 units at λ=0.05,
	// probability e^{−0.55} ≈ 0.58) is the median.
	if math.Abs(d.P50-11) > 1e-9 {
		t.Errorf("median %v, want exactly 11 (failure-free majority)", d.P50)
	}
	if d.Summary.Mean() <= 11 {
		t.Errorf("mean %v must exceed failure-free time", d.Summary.Mean())
	}
}

func TestEstimateMakespanDistributionValidation(t *testing.T) {
	if _, err := EstimateMakespanDistribution(nil, ExponentialFactory(1), Options{}, 0, rng.New(1)); err == nil {
		t.Error("zero runs should fail")
	}
}

func TestReport(t *testing.T) {
	cp := onlineChain(t, 8, 0.06, 0.4)
	res, err := core.SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Report(cp, res.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Expected-res.Expected) > 1e-9*res.Expected {
		t.Errorf("report expected %v ≠ DP %v", rep.Expected, res.Expected)
	}
	if rep.Checkpoints != len(res.Positions()) {
		t.Errorf("checkpoints %d ≠ %d", rep.Checkpoints, len(res.Positions()))
	}
	if rep.FailureFree <= 0 || rep.Expected < rep.FailureFree {
		t.Errorf("failure-free %v vs expected %v inconsistent", rep.FailureFree, rep.Expected)
	}
	if rep.ExpectedWaste <= 0 {
		t.Errorf("waste %v must be positive under failures", rep.ExpectedWaste)
	}
	if rep.StdDev <= 0 {
		t.Errorf("stddev %v must be positive", rep.StdDev)
	}
	if len(rep.Segments) != rep.Checkpoints {
		t.Errorf("segments %d ≠ checkpoints %d", len(rep.Segments), rep.Checkpoints)
	}
	// Consistency with the analytic variance.
	v, err := cp.MakespanVariance(res.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.StdDev*rep.StdDev-v) > 1e-9*v {
		t.Errorf("stddev² %v ≠ variance %v", rep.StdDev*rep.StdDev, v)
	}
}

func TestReportBadVector(t *testing.T) {
	cp := onlineChain(t, 4, 0.05, 0)
	if _, err := Report(cp, []bool{true}); err == nil {
		t.Error("wrong-length vector should fail")
	}
}
