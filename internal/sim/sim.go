// Package sim is the discrete-event execution simulator: it replays a
// checkpoint plan against a sampled failure process, reproducing exactly
// the paper's execution model — segments of work ending in checkpoints,
// rollback to the last checkpoint on failure, a failure-free downtime D,
// and recoveries during which failures may strike again.
//
// The simulator is the substitute for the physical platform the paper
// reasons about (see DESIGN.md): Monte-Carlo averages over runs converge
// to the expectations the analytical formulas predict, which is how
// experiments E1/E2 validate Proposition 1 and experiment E11 evaluates
// the general-law heuristics the closed forms cannot cover.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/stats"
)

// ErrTooManyFailures is returned when a single run exceeds its failure
// budget — the guard against non-terminating configurations (e.g. a
// deterministic failure law with inter-arrival shorter than the recovery).
var ErrTooManyFailures = errors.New("sim: failure budget exhausted; execution cannot make progress")

// RunStats decomposes one simulated execution.
type RunStats struct {
	// Makespan is the total wall-clock time of the run.
	Makespan float64
	// Failures counts failures (during work, checkpointing or recovery).
	Failures int
	// Lost is time spent computing work or checkpoints that was wasted.
	Lost float64
	// Downtime is total downtime served.
	Downtime float64
	// RecoveryTime is total time spent in recoveries (including failed
	// recovery attempts).
	RecoveryTime float64
	// Useful is the productive time: work plus checkpoints that stuck.
	Useful float64
}

// Options tunes a run.
type Options struct {
	// Downtime is D, the failure-free delay after every failure.
	Downtime float64
	// MaxFailures bounds the failures tolerated in one run (0 means the
	// default of 10 million).
	MaxFailures int
	// Workers is the goroutine count Monte-Carlo campaigns fan out over
	// (MonteCarlo, MonteCarloOnline, Campaign*); ≤ 0 means
	// runtime.GOMAXPROCS(0). Callers already running on a saturated
	// worker pool — the experiment engine's row jobs — pass 1, so nested
	// campaigns stop oversubscribing the host by GOMAXPROCS². Note the
	// worker count is part of the sampling schedule: campaigns are
	// deterministic for a given (seed, Workers) pair, and changing
	// Workers repartitions runs over per-worker streams.
	Workers int
	// QuantileRetention caps the samples EstimateMakespanDistribution
	// retains for exact sort-based quantiles; campaigns beyond the cap
	// switch to streaming P² estimates with O(1) memory. 0 means
	// DefaultQuantileRetention; negative forces streaming regardless of
	// the run count.
	QuantileRetention int
}

func (o Options) maxFailures() int {
	if o.MaxFailures <= 0 {
		return 10_000_000
	}
	return o.MaxFailures
}

// workerCount resolves the campaign fan-out for a given run count.
func (o Options) workerCount(runs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > runs {
		w = runs
	}
	return w
}

// forWorkers partitions runs over the workers (first runs%workers workers
// take one extra), derives one split stream per worker before any
// goroutine starts (so the split order is deterministic), runs body on
// each worker's goroutine, and returns the lowest-indexed worker error —
// a deterministic choice, independent of completion order.
func forWorkers(workers, runs int, seed *rng.Stream, body func(w, count int, r *rng.Stream) error) error {
	streams := make([]*rng.Stream, workers)
	for i := range streams {
		streams[i] = seed.Split()
	}
	errs := make([]error, workers)
	per := runs / workers
	extra := runs % workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		count := per
		if w < extra {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			errs[w] = body(w, count, streams[w])
		}(w, count)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes the segments in sequence against proc. Each segment is
// attempted as an atomic unit of duration Work+Checkpoint; a failure
// during the attempt wastes the time elapsed, costs a downtime (during
// which no failure can occur, per the model) plus a recovery of the
// segment's Recovery length (during which failures can occur), and the
// attempt restarts from the segment's beginning.
func Run(segments []core.Segment, proc failure.Process, opts Options) (RunStats, error) {
	if opts.Downtime < 0 {
		return RunStats{}, fmt.Errorf("sim: negative downtime %v", opts.Downtime)
	}
	var rs RunStats
	budget := opts.maxFailures()
	for _, seg := range segments {
		dur := seg.Work + seg.Checkpoint
		for {
			next := proc.NextFailure()
			if next >= dur {
				// Attempt succeeds; the checkpointed state is a renewal point.
				proc.Advance(dur)
				rs.Makespan += dur
				rs.Useful += dur
				break
			}
			// Failure mid-attempt.
			proc.ObserveFailure()
			rs.Makespan += next
			rs.Lost += next
			rs.Failures++
			if rs.Failures > budget {
				return rs, ErrTooManyFailures
			}
			// Downtime: failure-free by assumption; process clocks frozen.
			rs.Makespan += opts.Downtime
			rs.Downtime += opts.Downtime
			// Recovery: failures possible; repeat until one recovery
			// completes.
			for {
				rnext := proc.NextFailure()
				if rnext >= seg.Recovery {
					proc.Advance(seg.Recovery)
					rs.Makespan += seg.Recovery
					rs.RecoveryTime += seg.Recovery
					break
				}
				proc.ObserveFailure()
				rs.Makespan += rnext
				rs.RecoveryTime += rnext
				rs.Failures++
				if rs.Failures > budget {
					return rs, ErrTooManyFailures
				}
				rs.Makespan += opts.Downtime
				rs.Downtime += opts.Downtime
			}
		}
	}
	return rs, nil
}

// ProcessFactory builds a failure process, drawing its randomness from
// the supplied stream. The Monte-Carlo campaigns call a factory once
// per worker and, when the returned process implements
// failure.Resettable (all built-in processes do), obtain per-run
// freshness by calling Reset() between runs rather than re-invoking the
// factory. Custom factories whose processes must differ structurally
// per run (not just re-draw their clocks) should return a process that
// does NOT implement Resettable; the campaigns then fall back to one
// factory call per run.
type ProcessFactory func(r *rng.Stream) failure.Process

// ExponentialFactory returns a factory for the paper's core model: a
// platform-level Exponential process of rate lambda.
func ExponentialFactory(lambda float64) ProcessFactory {
	return func(r *rng.Stream) failure.Process {
		return failure.NewExponentialProcess(lambda, r)
	}
}

// SuperposedFactory returns a factory for a platform of n processors with
// the given per-processor law and rejuvenation policy, backed by the
// indexed-heap failure.SuperposedProcess (O(1) Advance/NextFailure,
// O(log p) ObserveFailure).
func SuperposedFactory(dist failure.Distribution, n int, policy failure.RejuvenationPolicy) ProcessFactory {
	return func(r *rng.Stream) failure.Process {
		sp, err := failure.NewSuperposedProcess(dist, n, policy, r)
		if err != nil {
			panic(err) // n validated by callers; see MonteCarlo
		}
		return sp
	}
}

// ScanFactory is SuperposedFactory backed by the O(p)-per-event
// failure.ScanProcess reference implementation. It exists for the
// scan-vs-heap comparisons of E14 and cmd/benchtraj; both factories are
// sample-identical, so campaigns on either produce the same results.
func ScanFactory(dist failure.Distribution, n int, policy failure.RejuvenationPolicy) ProcessFactory {
	return func(r *rng.Stream) failure.Process {
		sp, err := failure.NewScanProcess(dist, n, policy, r)
		if err != nil {
			panic(err) // n validated by callers; see MonteCarlo
		}
		return sp
	}
}

// MCResult aggregates a Monte-Carlo campaign.
type MCResult struct {
	// Makespan summarizes the per-run makespans.
	Makespan stats.Summary
	// Failures summarizes the per-run failure counts.
	Failures stats.Summary
	// Lost, Downtime, RecoveryTime and Useful summarize the per-run
	// decompositions.
	Lost, Downtime, RecoveryTime, Useful stats.Summary
	// Runs is the number of completed runs.
	Runs int
}

// add folds one run's decomposition into the aggregate.
func (m *MCResult) add(rs RunStats) {
	m.Makespan.Add(rs.Makespan)
	m.Failures.Add(float64(rs.Failures))
	m.Lost.Add(rs.Lost)
	m.Downtime.Add(rs.Downtime)
	m.RecoveryTime.Add(rs.RecoveryTime)
	m.Useful.Add(rs.Useful)
	m.Runs++
}

// merge folds another aggregate into this one (worker-order merges keep
// results deterministic).
func (m *MCResult) merge(other MCResult) {
	m.Makespan.Merge(other.Makespan)
	m.Failures.Merge(other.Failures)
	m.Lost.Merge(other.Lost)
	m.Downtime.Merge(other.Downtime)
	m.RecoveryTime.Merge(other.RecoveryTime)
	m.Useful.Merge(other.Useful)
	m.Runs += other.Runs
}

// MonteCarlo simulates the segments runs times and aggregates. Runs are
// distributed over opts.Workers goroutines (GOMAXPROCS when unset), each
// with an independent split of the seed stream, so results are
// deterministic for a given (seed, Workers) pair regardless of
// scheduling.
//
// The per-run loop is allocation-free in its steady state: each worker
// builds one process from the factory and, when the process implements
// failure.Resettable (all built-in processes do), re-initializes it per
// run instead of constructing a fresh one. A Reset draws exactly the
// variates construction would, so campaigns are sample-for-sample
// identical either way; Run itself works in value-typed RunStats and
// the caller-owned segments slice, allocating nothing.
func MonteCarlo(segments []core.Segment, factory ProcessFactory, opts Options, runs int, seed *rng.Stream) (MCResult, error) {
	if runs <= 0 {
		return MCResult{}, fmt.Errorf("sim: run count must be positive, got %d", runs)
	}
	workers := opts.workerCount(runs)
	parts := make([]MCResult, workers)
	err := forWorkers(workers, runs, seed, func(w, count int, r *rng.Stream) error {
		var acc MCResult
		var proc failure.Process
		for i := 0; i < count; i++ {
			if res, ok := proc.(failure.Resettable); ok {
				res.Reset()
			} else {
				proc = factory(r)
			}
			rs, err := Run(segments, proc, opts)
			if err != nil {
				return err
			}
			acc.add(rs)
		}
		parts[w] = acc
		return nil
	})
	if err != nil {
		return MCResult{}, err
	}
	var out MCResult
	for _, p := range parts {
		out.merge(p)
	}
	return out, nil
}

// MonteCarloPlan evaluates a chain problem's checkpoint vector by
// simulation: it splits the problem into segments and runs MonteCarlo.
// The downtime always comes from the problem's model; the remaining
// options (Workers, MaxFailures) are honoured as given.
func MonteCarloPlan(cp *core.ChainProblem, checkpointAfter []bool, factory ProcessFactory, opts Options, runs int, seed *rng.Stream) (MCResult, error) {
	segs, err := cp.Segments(checkpointAfter)
	if err != nil {
		return MCResult{}, err
	}
	opts.Downtime = cp.Model.Downtime
	return MonteCarlo(segs, factory, opts, runs, seed)
}
