package sim

// This file is the common-random-number (CRN) batch API: a comparator
// campaign evaluates S candidate plans or policies against the *same*
// replicated stochastic environments, instead of resampling the failure
// process once per candidate.
//
// Each replication records the platform's inter-failure gap sequence once
// (failure.RecordedTrace, extended lazily as the longest candidate needs
// it) and replays it through every candidate via failure.TraceCursor.
// That is S× fewer distribution samples than independent campaigns — for
// a superposed platform of p processors each replication saves (S−1)·p
// clock draws alone — and, because candidate makespans within a
// replication are positively correlated, the paired strategy deltas
// Δᵢ = makespanᵢ − makespan₀ have far lower variance than differences of
// independent means: the classic CRN variance-reduction argument. The
// CampaignResult carries both the per-candidate aggregates and the
// paired-difference summaries.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/stats"
)

// CampaignResult aggregates a common-random-number comparator campaign.
type CampaignResult struct {
	// Results holds one Monte-Carlo aggregate per candidate, indexed like
	// the candidate slice passed in. Marginally, each is distributed
	// exactly as an independent MonteCarlo of the same factory (pinned by
	// a KS test); only the *coupling* between candidates differs.
	Results []MCResult
	// Delta summarizes the per-replication paired makespan differences
	// candidate i − candidate 0. Delta[0] is identically zero; for i > 0
	// the summary's CI is the variance-reduced strategy comparison, and
	// its StdDev measures how strongly the common environment couples the
	// candidates.
	Delta []stats.Summary
	// Runs is the number of completed replications.
	Runs int
	// Digests holds per-candidate makespan t-digests when the campaign
	// ran through the sharded pipeline (CampaignPlansSharded /
	// MergeShards); nil from the legacy worker-partitioned entry
	// points. Digest quantiles are pinned in quantile space — not
	// bitwise — across shard counts; see stats.TDigest.
	Digests []*stats.TDigest
}

// CampaignPlans runs a CRN comparator campaign over static plans: each
// replication records one failure trace from factory and replays it
// across every plan's segments. Replications are distributed over
// opts.Workers goroutines exactly like MonteCarlo runs; results are
// deterministic for a given (seed, Workers) pair.
func CampaignPlans(plans [][]core.Segment, factory ProcessFactory, opts Options, runs int, seed *rng.Stream) (CampaignResult, error) {
	if len(plans) == 0 {
		return CampaignResult{}, fmt.Errorf("sim: campaign needs at least one candidate plan")
	}
	return campaign(len(plans), func(cand int, proc failure.Process) (RunStats, error) {
		return Run(plans[cand], proc, opts)
	}, factory, opts, runs, seed)
}

// CampaignPolicies runs a CRN comparator campaign over online policies:
// the same recorded environments replayed through RunOnline for every
// policy, so policy deltas are paired. opts.Downtime applies to every
// candidate, as in MonteCarloOnline.
func CampaignPolicies(cp *core.ChainProblem, policies []Policy, factory ProcessFactory, opts Options, runs int, seed *rng.Stream) (CampaignResult, error) {
	if len(policies) == 0 {
		return CampaignResult{}, fmt.Errorf("sim: campaign needs at least one candidate policy")
	}
	return campaign(len(policies), func(cand int, proc failure.Process) (RunStats, error) {
		return RunOnline(cp, policies[cand], proc, opts)
	}, factory, opts, runs, seed)
}

// campaign is the shared CRN engine: worker partitioning as in
// MonteCarlo, one RecordedTrace per worker reused across replications
// (allocation-free in steady state when the factory's process is
// Resettable), candidates replayed serially within each replication so
// trace extension order — and hence the stream draw order — is
// deterministic.
func campaign(cands int, exec func(cand int, proc failure.Process) (RunStats, error), factory ProcessFactory, opts Options, runs int, seed *rng.Stream) (CampaignResult, error) {
	if runs <= 0 {
		return CampaignResult{}, fmt.Errorf("sim: run count must be positive, got %d", runs)
	}
	workers := opts.workerCount(runs)
	type partial struct {
		res   []MCResult
		delta []stats.Summary
	}
	parts := make([]partial, workers)
	err := forWorkers(workers, runs, seed, func(w, count int, r *rng.Stream) error {
		res := make([]MCResult, cands)
		delta := make([]stats.Summary, cands)
		makespans := make([]float64, cands)
		src := factory(r)
		_, resettable := src.(failure.Resettable)
		trace := failure.NewRecordedTrace(src)
		cursor := trace.Cursor()
		for rep := 0; rep < count; rep++ {
			if rep > 0 {
				if resettable {
					trace.Reset()
				} else {
					// Processes that must differ structurally per
					// replication: fall back to one factory call each, as
					// MonteCarlo does.
					src = factory(r)
					trace = failure.NewRecordedTrace(src)
					cursor = trace.Cursor()
				}
			}
			for cand := 0; cand < cands; cand++ {
				cursor.Reset()
				rs, err := exec(cand, cursor)
				if err != nil {
					return err
				}
				res[cand].add(rs)
				makespans[cand] = rs.Makespan
			}
			for cand := range delta {
				delta[cand].Add(makespans[cand] - makespans[0])
			}
		}
		parts[w] = partial{res: res, delta: delta}
		return nil
	})
	if err != nil {
		return CampaignResult{}, err
	}
	out := CampaignResult{
		Results: make([]MCResult, cands),
		Delta:   make([]stats.Summary, cands),
	}
	for _, p := range parts {
		for i := range out.Results {
			out.Results[i].merge(p.res[i])
			out.Delta[i].Merge(p.delta[i])
		}
	}
	out.Runs = out.Results[0].Runs
	return out, nil
}
