package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/numeric"
	"repro/internal/rng"
)

func TestRunNoFailures(t *testing.T) {
	// A deterministic failure far beyond the plan: makespan is exactly
	// the failure-free time.
	segs := []core.Segment{
		{Work: 5, Checkpoint: 1, Recovery: 2},
		{Work: 3, Checkpoint: 0.5, Recovery: 2},
	}
	proc, err := failure.NewTraceProcess([]float64{1e9})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(segs, proc, Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Failures != 0 {
		t.Errorf("failures = %d", rs.Failures)
	}
	if !numeric.AlmostEqual(rs.Makespan, 9.5, 1e-12) {
		t.Errorf("makespan = %v, want 9.5", rs.Makespan)
	}
	if rs.Useful != rs.Makespan || rs.Lost != 0 {
		t.Errorf("decomposition wrong: %+v", rs)
	}
}

func TestRunScriptedFailure(t *testing.T) {
	// One failure after 2 units, then quiet: the run must pay
	// 2 (lost) + D + R + full segment.
	segs := []core.Segment{{Work: 5, Checkpoint: 1, Recovery: 3}}
	proc, err := failure.NewTraceProcess([]float64{2, 1e9})
	if err != nil {
		t.Fatal(err)
	}
	const d = 0.5
	rs, err := Run(segs, proc, Options{Downtime: d})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Failures != 1 {
		t.Fatalf("failures = %d, want 1", rs.Failures)
	}
	want := 2 + d + 3 + 6.0
	if !numeric.AlmostEqual(rs.Makespan, want, 1e-12) {
		t.Errorf("makespan = %v, want %v", rs.Makespan, want)
	}
	if rs.Lost != 2 || rs.Downtime != d || rs.RecoveryTime != 3 || rs.Useful != 6 {
		t.Errorf("decomposition wrong: %+v", rs)
	}
}

func TestRunFailureDuringRecovery(t *testing.T) {
	// Failure at 1 (during work), then at 1 again (mid-recovery of
	// length 3), then quiet.
	segs := []core.Segment{{Work: 4, Checkpoint: 0, Recovery: 3}}
	proc, err := failure.NewTraceProcess([]float64{1, 1, 1e9})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(segs, proc, Options{Downtime: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Failures != 2 {
		t.Fatalf("failures = %d, want 2", rs.Failures)
	}
	// 1 lost + D + (1 failed recovery + D + 3 full recovery) + 4 work.
	want := 1 + 0.25 + 1 + 0.25 + 3 + 4.0
	if !numeric.AlmostEqual(rs.Makespan, want, 1e-12) {
		t.Errorf("makespan = %v, want %v", rs.Makespan, want)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	// Failures every 1 unit but recovery needs 2: never progresses.
	segs := []core.Segment{{Work: 4, Checkpoint: 0, Recovery: 2}}
	proc, err := failure.NewTraceProcess([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(segs, proc, Options{Downtime: 0, MaxFailures: 100})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("want ErrTooManyFailures, got %v", err)
	}
}

func TestRunRejectsNegativeDowntime(t *testing.T) {
	if _, err := Run(nil, failure.NewExponentialProcess(1, rng.New(1)), Options{Downtime: -1}); err == nil {
		t.Error("negative downtime should fail")
	}
}

func TestMonteCarloMatchesProposition1(t *testing.T) {
	// The headline validation (experiment E1 in miniature): the sample
	// mean of simulated makespans must agree with the closed form within
	// the 99.9% confidence interval.
	cases := []struct{ w, c, d, r, lambda float64 }{
		{10, 1, 0, 1, 0.05},
		{10, 1, 2, 3, 0.05},
		{100, 5, 1, 5, 0.01},
		{1, 0.1, 0.1, 0.1, 1.0},
		{50, 2, 0.5, 2, 0.002},
	}
	for _, cse := range cases {
		m, err := expectation.NewModel(cse.lambda, cse.d)
		if err != nil {
			t.Fatal(err)
		}
		want := m.ExpectedTime(cse.w, cse.c, cse.r)
		got, err := EstimateExpectedTime(cse.w, cse.c, cse.d, cse.r, cse.lambda, 60000, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Contains(want, 0.999) {
			t.Errorf("W=%v C=%v D=%v R=%v λ=%v: closed form %v outside CI %v ± %v",
				cse.w, cse.c, cse.d, cse.r, cse.lambda, want, got.Mean(), got.CI(0.999))
		}
	}
}

func TestEstimateLostMatchesEq4(t *testing.T) {
	m, _ := expectation.NewModel(0.1, 0)
	want := m.ExpectedLost(10, 2)
	got, err := EstimateLost(10, 2, 0.1, 200000, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(want, 0.999) {
		t.Errorf("E[Tlost] closed form %v outside CI %v ± %v", want, got.Mean(), got.CI(0.999))
	}
	if _, err := EstimateLost(0, 0, 0.1, 10, rng.New(1)); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestEstimateRecoveryMatchesEq5(t *testing.T) {
	m, _ := expectation.NewModel(0.2, 1.5)
	want := m.ExpectedRecovery(3)
	got, err := EstimateRecovery(1.5, 3, 0.2, 200000, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(want, 0.999) {
		t.Errorf("E[Trec] closed form %v outside CI %v ± %v", want, got.Mean(), got.CI(0.999))
	}
	if _, err := EstimateRecovery(-1, 1, 0.1, 10, rng.New(1)); err == nil {
		t.Error("negative downtime should fail")
	}
}

func TestMonteCarloPlanMatchesSegmentSum(t *testing.T) {
	// A multi-segment plan's simulated mean must match the sum of
	// Proposition 1 over segments (renewal argument).
	r := rng.New(41)
	g, err := dag.Chain(5, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := expectation.NewModel(0.08, 0.5)
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloPlan(cp, res.CheckpointAfter, ExponentialFactory(m.Lambda), Options{}, 60000, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Makespan.Contains(res.Expected, 0.999) {
		t.Errorf("DP expectation %v outside simulated CI %v ± %v",
			res.Expected, mc.Makespan.Mean(), mc.Makespan.CI(0.999))
	}
	if mc.Runs != 60000 {
		t.Errorf("runs = %d", mc.Runs)
	}
}

func TestMonteCarloDeterministicSeed(t *testing.T) {
	segs := []core.Segment{{Work: 5, Checkpoint: 1, Recovery: 1}}
	a, err := MonteCarlo(segs, ExponentialFactory(0.1), Options{Downtime: 0.5}, 5000, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(segs, ExponentialFactory(0.1), Options{Downtime: 0.5}, 5000, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan.Mean() != b.Makespan.Mean() || a.Failures.Mean() != b.Failures.Mean() {
		t.Error("same seed gave different results")
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := MonteCarlo(nil, ExponentialFactory(1), Options{}, 0, rng.New(1)); err == nil {
		t.Error("zero runs should fail")
	}
}

func TestMonteCarloPropagatesRunErrors(t *testing.T) {
	segs := []core.Segment{{Work: 4, Checkpoint: 0, Recovery: 2}}
	factory := func(r *rng.Stream) failure.Process {
		tp, _ := failure.NewTraceProcess([]float64{1})
		return tp
	}
	_, err := MonteCarlo(segs, factory, Options{MaxFailures: 10}, 4, rng.New(1))
	if !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("want ErrTooManyFailures, got %v", err)
	}
}

func TestSuperposedExponentialEquivalence(t *testing.T) {
	// A platform of p Exponential processors behaves exactly like one
	// Exponential process of rate p·λproc (memorylessness): simulated
	// means must agree with the closed form built on λ = p·λproc.
	const procs = 4
	const lambdaProc = 0.01
	m, _ := expectation.NewModel(procs*lambdaProc, 0.5)
	want := m.ExpectedTime(20, 1, 2)
	e, _ := failure.NewExponential(lambdaProc)
	segs := []core.Segment{{Work: 20, Checkpoint: 1, Recovery: 2}}
	mc, err := MonteCarlo(segs, SuperposedFactory(e, procs, failure.RejuvenateFailedOnly),
		Options{Downtime: 0.5}, 60000, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Makespan.Contains(want, 0.999) {
		t.Errorf("superposed mean %v ± %v vs closed form %v",
			mc.Makespan.Mean(), mc.Makespan.CI(0.999), want)
	}
}

func TestCascadeDowntimeBounds(t *testing.T) {
	// D(p) ≥ D always; for tiny λproc·D the lower bound is tight.
	got, err := CascadeDowntime(64, 1e-6, 1, 20000, rng.New(66))
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean() < 1 {
		t.Errorf("cascade mean %v below D = 1", got.Mean())
	}
	if got.Mean() > 1.01 {
		t.Errorf("cascade mean %v should be ≈ D in the rare-failure regime", got.Mean())
	}
	// Cascades grow with λproc.
	heavy, err := CascadeDowntime(64, 1e-2, 1, 20000, rng.New(67))
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Mean() <= got.Mean() {
		t.Errorf("higher failure rate should lengthen cascades: %v vs %v", heavy.Mean(), got.Mean())
	}
	if _, err := CascadeDowntime(0, 1, 1, 10, rng.New(1)); err == nil {
		t.Error("zero processors should fail")
	}
	if _, err := CascadeDowntime(2, -1, 1, 10, rng.New(1)); err == nil {
		t.Error("negative rate should fail")
	}
	// Supercritical load (p·λproc·D ≥ 0.9): the busy period diverges and
	// the simulator must refuse rather than hang.
	if _, err := CascadeDowntime(65536, 1e-3, 1, 10, rng.New(1)); err == nil {
		t.Error("supercritical cascade should be rejected")
	}
}

func TestRunStatsDecompositionAddsUp(t *testing.T) {
	// Makespan must equal Useful + Lost + Downtime + RecoveryTime.
	segs := []core.Segment{
		{Work: 10, Checkpoint: 1, Recovery: 2},
		{Work: 5, Checkpoint: 0.5, Recovery: 1},
	}
	r := rng.New(88)
	for i := 0; i < 200; i++ {
		proc := failure.NewExponentialProcess(0.2, r)
		rs, err := Run(segs, proc, Options{Downtime: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		sum := rs.Useful + rs.Lost + rs.Downtime + rs.RecoveryTime
		if math.Abs(sum-rs.Makespan) > 1e-9 {
			t.Fatalf("decomposition %v ≠ makespan %v", sum, rs.Makespan)
		}
	}
}
