package sim

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stats"
)

// CascadeDowntime estimates the effective platform downtime D(p) discussed
// after Equation 6: with p processors, a processor may fail while another
// is down, so the platform-level downtime (the span until every processor
// is simultaneously up again) can exceed the single-node downtime D. The
// paper notes the exact value is unknown, that D(1) = D is a lower bound,
// and that the bound should be accurate in practice — experiment E10
// quantifies that.
//
// One sample plays a cascade: at time 0 a processor fails and is down
// until D. While any processor is down, each of the up processors fails
// independently at rate lambdaProc; every such failure keeps the platform
// down until its own repair completes. The sample is the time until all
// processors are up.
func CascadeDowntime(p int, lambdaProc, d float64, runs int, seed *rng.Stream) (stats.Summary, error) {
	if p <= 0 {
		return stats.Summary{}, fmt.Errorf("sim: processor count must be positive, got %d", p)
	}
	if lambdaProc <= 0 || d < 0 {
		return stats.Summary{}, fmt.Errorf("sim: need λproc > 0 and D ≥ 0, got %v, %v", lambdaProc, d)
	}
	// The cascade is a busy period of an M/D/∞-like system with offered
	// load ≈ p·λproc·D: near and above load 1 the busy period explodes
	// (exponentially long cascades), so reject configurations where one
	// sample could effectively never terminate.
	if load := float64(p) * lambdaProc * d; load >= 0.9 {
		return stats.Summary{}, fmt.Errorf("sim: cascade load p·λproc·D = %.3g ≥ 0.9: platform cannot drain its failures (supercritical regime)", load)
	}
	var s stats.Summary
	for i := 0; i < runs; i++ {
		s.Add(sampleCascade(p, lambdaProc, d, seed))
	}
	return s, nil
}

func sampleCascade(p int, lambdaProc, d float64, r *rng.Stream) float64 {
	// Invariant: at time t, `down` processors are under repair, the
	// earliest finishing at the times in repairEnd (a small sorted set;
	// p is large but concurrent repairs are few in realistic regimes).
	t := 0.0
	repairEnd := []float64{d} // initial failure at time 0
	for len(repairEnd) > 0 {
		up := p - len(repairEnd)
		// Next event: either the earliest repair completes, or an up
		// processor fails.
		minEnd := repairEnd[0]
		for _, e := range repairEnd[1:] {
			if e < minEnd {
				minEnd = e
			}
		}
		var nextFail float64
		if up > 0 {
			nextFail = t + r.ExpFloat64()/(lambdaProc*float64(up))
		} else {
			nextFail = minEnd + 1 // no up processor can fail
		}
		if nextFail < minEnd {
			t = nextFail
			repairEnd = append(repairEnd, t+d)
			continue
		}
		t = minEnd
		// Remove completed repairs at exactly t.
		keep := repairEnd[:0]
		for _, e := range repairEnd {
			if e > t {
				keep = append(keep, e)
			}
		}
		repairEnd = keep
	}
	return t
}
