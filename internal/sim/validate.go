package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// EstimateExpectedTime Monte-Carlo-estimates E[T(W,C,D,R,λ)] — the
// quantity of Proposition 1 — by simulating a single segment. Experiment
// E1 compares the returned summary's confidence interval against the
// closed form.
func EstimateExpectedTime(w, c, d, r, lambda float64, runs int, seed *rng.Stream) (stats.Summary, error) {
	if lambda <= 0 {
		return stats.Summary{}, fmt.Errorf("sim: λ must be positive, got %v", lambda)
	}
	seg := []core.Segment{{Work: w, Checkpoint: c, Recovery: r}}
	res, err := MonteCarlo(seg, ExponentialFactory(lambda), Options{Downtime: d}, runs, seed)
	if err != nil {
		return stats.Summary{}, err
	}
	return res.Makespan, nil
}

// EstimateLost Monte-Carlo-estimates E[Tlost]: the expectation of an
// Exp(λ) variate conditioned on being smaller than W+C (Eq. 4 of the
// paper). Sampling is by rejection, which is exact.
func EstimateLost(w, c, lambda float64, runs int, seed *rng.Stream) (stats.Summary, error) {
	if lambda <= 0 {
		return stats.Summary{}, fmt.Errorf("sim: λ must be positive, got %v", lambda)
	}
	horizon := w + c
	if horizon <= 0 {
		return stats.Summary{}, fmt.Errorf("sim: W+C must be positive, got %v", horizon)
	}
	var s stats.Summary
	for i := 0; i < runs; i++ {
		for {
			x := seed.ExpFloat64() / lambda
			if x < horizon {
				s.Add(x)
				break
			}
		}
	}
	return s, nil
}

// EstimateRecovery Monte-Carlo-estimates E[Trec]: the downtime-plus-
// recovery delay including failures during recovery (Eq. 5). Each sample
// plays the downtime/recovery loop until a recovery of length R completes.
func EstimateRecovery(d, r, lambda float64, runs int, seed *rng.Stream) (stats.Summary, error) {
	if lambda <= 0 {
		return stats.Summary{}, fmt.Errorf("sim: λ must be positive, got %v", lambda)
	}
	if d < 0 || r < 0 {
		return stats.Summary{}, fmt.Errorf("sim: negative D (%v) or R (%v)", d, r)
	}
	var s stats.Summary
	for i := 0; i < runs; i++ {
		total := d // downtime is failure-free
		for {
			x := seed.ExpFloat64() / lambda
			if x >= r {
				total += r
				break
			}
			total += x + d
		}
		s.Add(total)
	}
	return s, nil
}
