package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/rng"
)

func onlineChain(t *testing.T, n int, lambda, d float64) *core.ChainProblem {
	t.Helper()
	g, err := dag.Chain(n, dag.DefaultWeights(), rng.New(101))
	if err != nil {
		t.Fatal(err)
	}
	m, err := expectation.NewModel(lambda, d)
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestRunOnlineStaticMatchesRun(t *testing.T) {
	// A static policy must reproduce the segment semantics of Run: the
	// simulated mean must match the analytical expectation of the same
	// placement.
	cp := onlineChain(t, 8, 0.08, 0.5)
	res, err := core.SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cp.Makespan(res.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := MonteCarloOnline(cp, StaticPolicy{CheckpointAfter: res.CheckpointAfter},
		ExponentialFactory(cp.Model.Lambda), Options{Downtime: cp.Model.Downtime}, 40000, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Contains(want, 0.999) {
		t.Errorf("online static mean %v ± %v vs analytical %v",
			sum.Mean(), sum.CI(0.999), want)
	}
}

func TestRunOnlineNoFailures(t *testing.T) {
	cp := onlineChain(t, 5, 0.01, 0)
	proc, err := failure.NewTraceProcess([]float64{1e12})
	if err != nil {
		t.Fatal(err)
	}
	always := make([]bool, cp.Len())
	for i := range always {
		always[i] = true
	}
	rs, err := RunOnline(cp, StaticPolicy{CheckpointAfter: always}, proc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := range cp.Weights {
		want += cp.Weights[i] + cp.Ckpt[i]
	}
	if math.Abs(rs.Makespan-want) > 1e-9 {
		t.Errorf("failure-free online = %v, want %v", rs.Makespan, want)
	}
	if rs.Failures != 0 {
		t.Errorf("failures = %d", rs.Failures)
	}
}

func TestHazardPolicyAdaptsToMemorylessRate(t *testing.T) {
	// Under exponential failures the hazard policy reduces to the static
	// greedy rule; its makespan must be within a few percent of the DP.
	cp := onlineChain(t, 20, 0.05, 0.25)
	dp, err := core.SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := failure.NewExponential(cp.Model.Lambda)
	hz, err := MonteCarloOnline(cp, HazardPolicy{Hazard: e.Hazard},
		ExponentialFactory(cp.Model.Lambda), Options{Downtime: 0.25}, 20000, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if hz.Mean() < dp.Expected*0.999 {
		t.Errorf("hazard policy %v beats the provably optimal DP %v", hz.Mean(), dp.Expected)
	}
	if hz.Mean() > dp.Expected*1.25 {
		t.Errorf("hazard policy %v too far above optimal %v", hz.Mean(), dp.Expected)
	}
}

func TestWorkThresholdPolicy(t *testing.T) {
	cp := onlineChain(t, 12, 0.05, 0.25)
	period := expectation.DalyPeriod(0.3, cp.Model.Lambda)
	online, err := MonteCarloOnline(cp, WorkThresholdPolicy{Threshold: period},
		ExponentialFactory(cp.Model.Lambda), Options{Downtime: 0.25}, 20000, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// Must match the analytical expectation of the equivalent static
	// periodic placement.
	static, err := core.PeriodicCheckpoint(cp, period)
	if err != nil {
		t.Fatal(err)
	}
	if !online.Contains(static.Expected, 0.999) {
		t.Errorf("online periodic %v ± %v vs static analytical %v",
			online.Mean(), online.CI(0.999), static.Expected)
	}
}

func TestOnlinePolicyNames(t *testing.T) {
	if (StaticPolicy{Label: "x"}).Name() != "x" || (StaticPolicy{}).Name() == "" {
		t.Error("static policy naming broken")
	}
	if (HazardPolicy{}).Name() == "" || (WorkThresholdPolicy{}).Name() == "" {
		t.Error("policy names must be non-empty")
	}
}

func TestMonteCarloOnlineValidation(t *testing.T) {
	cp := onlineChain(t, 3, 0.05, 0)
	if _, err := MonteCarloOnline(cp, StaticPolicy{}, ExponentialFactory(0.05), Options{}, 0, rng.New(1)); err == nil {
		t.Error("zero runs should fail")
	}
}

func TestVarianceMatchesSimulation(t *testing.T) {
	// The analytic makespan variance (second-moment extension of
	// Proposition 1's recursion) must match the Monte-Carlo variance.
	cp := onlineChain(t, 6, 0.1, 0.5)
	res, err := core.SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	wantVar, err := cp.MakespanVariance(res.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloPlan(cp, res.CheckpointAfter, ExponentialFactory(cp.Model.Lambda), Options{}, 120000, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	got := mc.Makespan.Variance()
	if math.Abs(got-wantVar)/wantVar > 0.05 {
		t.Errorf("simulated variance %v vs analytic %v (>5%% apart)", got, wantVar)
	}
}
