package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/sim"
)

func steadyStateFixture(t testing.TB) ([]core.Segment, *core.ChainProblem) {
	t.Helper()
	m, err := expectation.NewModel(0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cp := &core.ChainProblem{
		Weights: make([]float64, 32),
		Ckpt:    make([]float64, 32),
		Rec:     make([]float64, 32),
		Model:   m,
	}
	r := rng.New(9)
	for i := range cp.Weights {
		cp.Weights[i] = r.Range(1, 8)
		cp.Ckpt[i] = r.Range(0.1, 0.5)
		cp.Rec[i] = r.Range(0.1, 0.5)
	}
	res, err := core.SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := cp.Segments(res.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	return segs, cp
}

// TestRunSteadyStateAllocs pins the acceptance bar for the Monte-Carlo
// hot loop: one simulated run with a reused resettable process and a
// caller-owned segments slice allocates nothing.
func TestRunSteadyStateAllocs(t *testing.T) {
	segs, _ := steadyStateFixture(t)
	proc := failure.NewExponentialProcess(0.05, rng.New(10))
	opts := sim.Options{Downtime: 0.5}
	allocs := testing.AllocsPerRun(200, func() {
		proc.Reset()
		if _, err := sim.Run(segs, proc, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state run loop allocates %.1f objects/run, want 0", allocs)
	}
}

// TestResetMatchesFreshProcess pins the determinism contract of
// failure.Resettable: a campaign that resets one process per run must be
// sample-for-sample identical to one constructing a fresh process per
// run from the same stream.
func TestResetMatchesFreshProcess(t *testing.T) {
	segs, cp := steadyStateFixture(t)
	factory := sim.ExponentialFactory(cp.Model.Lambda)
	opts := sim.Options{Downtime: cp.Model.Downtime}
	const runs = 500

	fresh := rng.New(42)
	var freshMakespans []float64
	for i := 0; i < runs; i++ {
		rs, err := sim.Run(segs, factory(fresh), opts)
		if err != nil {
			t.Fatal(err)
		}
		freshMakespans = append(freshMakespans, rs.Makespan)
	}

	reused := rng.New(42)
	proc := factory(reused)
	for i := 0; i < runs; i++ {
		if i > 0 {
			proc.(failure.Resettable).Reset()
		}
		rs, err := sim.Run(segs, proc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Makespan != freshMakespans[i] {
			t.Fatalf("run %d: reused process makespan %v, fresh %v", i, rs.Makespan, freshMakespans[i])
		}
	}
}
