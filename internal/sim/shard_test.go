package sim

import (
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/stats"
)

// shardTestPlans builds a small comparator workload: three plans over
// the same total work with different checkpoint densities.
func shardTestPlans() [][]core.Segment {
	seg := func(w, c, r float64) core.Segment { return core.Segment{Work: w, Checkpoint: c, Recovery: r} }
	return [][]core.Segment{
		{seg(10, 1, 0.5)},
		{seg(5, 1, 0.5), seg(5, 1, 0.5)},
		{seg(2.5, 1, 0.5), seg(2.5, 1, 0.5), seg(2.5, 1, 0.5), seg(2.5, 1, 0.5)},
	}
}

func sameSummary(a, b stats.Summary) bool {
	return a.N() == b.N() &&
		math.Float64bits(a.Mean()) == math.Float64bits(b.Mean()) &&
		math.Float64bits(a.Variance()) == math.Float64bits(b.Variance()) &&
		math.Float64bits(a.Min()) == math.Float64bits(b.Min()) &&
		math.Float64bits(a.Max()) == math.Float64bits(b.Max())
}

func sameMCResult(a, b MCResult) bool {
	return a.Runs == b.Runs &&
		sameSummary(a.Makespan, b.Makespan) &&
		sameSummary(a.Failures, b.Failures) &&
		sameSummary(a.Lost, b.Lost) &&
		sameSummary(a.Downtime, b.Downtime) &&
		sameSummary(a.RecoveryTime, b.RecoveryTime) &&
		sameSummary(a.Useful, b.Useful)
}

func sameCampaign(a, b CampaignResult) bool {
	if a.Runs != b.Runs || len(a.Results) != len(b.Results) || len(a.Delta) != len(b.Delta) {
		return false
	}
	for i := range a.Results {
		if !sameMCResult(a.Results[i], b.Results[i]) || !sameSummary(a.Delta[i], b.Delta[i]) {
			return false
		}
	}
	return true
}

// TestShardMergeBitIdentical is the S3 property: merge(shards(R, k)) is
// bit-identical to the single-shard run for every k, across failure
// laws, repair policies and worker counts — the block-fold determinism
// contract.
func TestShardMergeBitIdentical(t *testing.T) {
	weib, err := failure.NewWeibull(0.7, 40)
	if err != nil {
		t.Fatal(err)
	}
	logn, err := failure.NewLogNormal(3.2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	factories := map[string]ProcessFactory{
		"exp":          ExponentialFactory(0.08),
		"weibull-min":  SuperposedFactory(weib, 8, failure.RejuvenateFailedOnly),
		"weibull-all":  SuperposedFactory(weib, 8, failure.RejuvenateAll),
		"lognormal":    SuperposedFactory(logn, 8, failure.RejuvenateFailedOnly),
		"lognormal-rj": SuperposedFactory(logn, 8, failure.RejuvenateAll),
	}
	plans := shardTestPlans()
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			base := ShardOptions{
				Options:   Options{Downtime: 0.3, Workers: 1},
				Seed:      9001,
				Runs:      1024,
				Shards:    1,
				BlockSize: 64,
			}
			ref, err := CampaignPlansSharded(plans, factory, base)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Runs != base.Runs {
				t.Fatalf("reference ran %d of %d", ref.Runs, base.Runs)
			}
			for _, k := range []int{1, 2, 7, 16} {
				for _, workers := range []int{1, 4} {
					so := base
					so.Shards = k
					so.Workers = workers
					got, err := CampaignPlansSharded(plans, factory, so)
					if err != nil {
						t.Fatalf("k=%d workers=%d: %v", k, workers, err)
					}
					if !sameCampaign(ref, got) {
						t.Errorf("k=%d workers=%d: merged result differs from single-shard run (mean %v vs %v, delta1 %v vs %v)",
							k, workers, got.Results[0].Makespan.Mean(), ref.Results[0].Makespan.Mean(),
							got.Delta[1].Mean(), ref.Delta[1].Mean())
					}
					// Digests are pinned in quantile space across shard
					// counts, not bitwise.
					for c := range got.Digests {
						for _, q := range []float64{0.5, 0.9, 0.99} {
							a, b := ref.Digests[c].Quantile(q), got.Digests[c].Quantile(q)
							if math.Abs(a-b) > 0.05*math.Abs(a)+1e-9 {
								t.Errorf("k=%d cand=%d q=%v: digest quantile %v vs reference %v", k, c, q, b, a)
							}
						}
					}
				}
			}
		})
	}
}

// TestShardedMatchesMCMarginal sanity-checks the pipeline end to end:
// the sharded campaign's per-candidate mean agrees statistically with
// an independent MonteCarlo of the same factory.
func TestShardedMatchesMCMarginal(t *testing.T) {
	plans := shardTestPlans()
	factory := ExponentialFactory(0.08)
	so := ShardOptions{Options: Options{Downtime: 0.3, Workers: 1}, Seed: 7, Runs: 6000, Shards: 4}
	res, err := CampaignPlansSharded(plans, factory, so)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarlo(plans[0], factory, so.Options, 6000, rng.New(1234))
	if err != nil {
		t.Fatal(err)
	}
	ciC := res.Results[0].Makespan.CI(0.999)
	ciM := mc.Makespan.CI(0.999)
	if diff := math.Abs(res.Results[0].Makespan.Mean() - mc.Makespan.Mean()); diff > ciC+ciM {
		t.Errorf("sharded mean %v vs MC mean %v differ by %v (> %v)",
			res.Results[0].Makespan.Mean(), mc.Makespan.Mean(), diff, ciC+ciM)
	}
	// Digest median consistent with the summary range.
	med := res.Digests[0].Quantile(0.5)
	if med < res.Results[0].Makespan.Min() || med > res.Results[0].Makespan.Max() {
		t.Errorf("digest median %v outside [%v, %v]", med, res.Results[0].Makespan.Min(), res.Results[0].Makespan.Max())
	}
}

// countingFactory wraps a factory and counts invocations — the resume
// test uses it to prove spilled blocks are replayed, not re-simulated.
func countingFactory(inner ProcessFactory, n *atomic.Int64) ProcessFactory {
	return func(r *rng.Stream) failure.Process {
		n.Add(1)
		return inner(r)
	}
}

// TestShardSpillResume is the S3 resume property: kill a campaign
// mid-shard (simulated by truncating the spill and removing the result
// file), resume, and get the uninterrupted result bit-identically —
// with completed blocks replayed from the spill rather than recomputed.
func TestShardSpillResume(t *testing.T) {
	plans := shardTestPlans()
	factory := ExponentialFactory(0.08)
	mk := func(dir string) ShardOptions {
		return ShardOptions{
			Options:   Options{Downtime: 0.3, Workers: 1},
			Seed:      4242,
			Runs:      512,
			Shards:    4,
			BlockSize: 32, // 16 blocks, 4 per shard
			SpillDir:  dir,
		}
	}
	// Reference: uninterrupted spilled run.
	refDir := t.TempDir()
	ref, err := CampaignPlansSharded(plans, factory, mk(refDir))
	if err != nil {
		t.Fatal(err)
	}
	// Interrupted run: shards 0 and 1 finish; shard 2 is killed after
	// its spill gained 3 complete blocks plus a corrupt tail; shard 3
	// never starts.
	dir := t.TempDir()
	so := mk(dir)
	for s := 0; s < 3; s++ {
		if _, err := CampaignPlansShard(plans, factory, so, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(shardResultPath(dir, 2)); err != nil {
		t.Fatal(err)
	}
	spill2 := shardSpillPath(dir, 2)
	data, err := os.ReadFile(spill2)
	if err != nil {
		t.Fatal(err)
	}
	blocks, meta, _, _, _, err := failure.ReadTraceSpill(spill2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 || meta == "" {
		t.Fatalf("expected 4 complete spilled blocks, got %d", len(blocks))
	}
	// Truncate inside the last record: 3 complete blocks + torn tail.
	if err := os.WriteFile(spill2, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	counted := countingFactory(factory, &calls)
	resumed, err := CampaignPlansSharded(plans, counted, so)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCampaign(ref, resumed) {
		t.Error("resumed campaign differs from uninterrupted run")
	}
	// Digest equivalence bitwise here: same fold structure either way.
	for c := range ref.Digests {
		for _, q := range []float64{0.5, 0.99} {
			if a, b := ref.Digests[c].Quantile(q), resumed.Digests[c].Quantile(q); a != b {
				t.Errorf("cand %d q=%v: resumed digest %v vs %v", c, q, b, a)
			}
		}
	}
	// Shards 0, 1 loaded from JSON (0 factory calls); shard 2 replayed
	// 3 blocks (0 calls) and re-ran 1 (1 call); shard 3 ran 4 blocks
	// (4 calls). The exponential process is Resettable, so each live
	// block costs exactly one factory call.
	if got := calls.Load(); got != 5 {
		t.Errorf("resume made %d factory calls, want 5 (1 re-run + 4 fresh blocks)", got)
	}
}

// TestShardFingerprintMismatches pins the loud-error contract on every
// cross-process seam.
func TestShardFingerprintMismatches(t *testing.T) {
	plans := shardTestPlans()
	factory := ExponentialFactory(0.08)
	base := ShardOptions{Options: Options{Workers: 1}, Seed: 1, Runs: 256, Shards: 2, BlockSize: 32}

	a0, err := CampaignPlansShard(plans, factory, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := CampaignPlansShard(plans, factory, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := base
	other.Seed = 2
	b1, err := CampaignPlansShard(plans, factory, other, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards([]*ShardResult{a0, b1}); err == nil || !strings.Contains(err.Error(), "fingerprints differ") {
		t.Errorf("mixed-seed merge: %v", err)
	}
	if _, err := MergeShards([]*ShardResult{a0}); err == nil || !strings.Contains(err.Error(), "missing 1") {
		t.Errorf("missing shard: %v", err)
	}
	if _, err := MergeShards([]*ShardResult{a0, a0}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate shard: %v", err)
	}
	if _, err := MergeShards(nil); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := MergeShards([]*ShardResult{a0, a1}); err != nil {
		t.Errorf("valid merge rejected: %v", err)
	}

	// Workload mismatch: same seed, different plans.
	otherPlans := shardTestPlans()
	otherPlans[0][0].Work *= 2
	c0, err := CampaignPlansShard(otherPlans, factory, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards([]*ShardResult{c0, a1}); err == nil || !strings.Contains(err.Error(), "fingerprints differ") {
		t.Errorf("mixed-workload merge: %v", err)
	}

	// Spill-dir seams.
	dir := t.TempDir()
	so := base
	so.SpillDir = dir
	if _, err := CampaignPlansShard(plans, factory, so, 0); err != nil {
		t.Fatal(err)
	}
	// Result file from a different campaign.
	bad := so
	bad.Seed = 99
	if _, err := CampaignPlansShard(plans, factory, bad, 0); err == nil || !strings.Contains(err.Error(), "refusing to mix") {
		t.Errorf("foreign result file: %v", err)
	}
	// Spill from a different campaign (result gone, trace remains).
	if err := os.Remove(shardResultPath(dir, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := CampaignPlansShard(plans, factory, bad, 0); err == nil || !strings.Contains(err.Error(), "refusing to replay") {
		t.Errorf("foreign spill: %v", err)
	}
	// Manifest seam.
	if err := WriteCampaignManifest(dir, mustFingerprint(t, base, plans)); err != nil {
		t.Fatal(err)
	}
	if err := WriteCampaignManifest(dir, mustFingerprint(t, bad, plans)); err == nil || !strings.Contains(err.Error(), "already holds") {
		t.Errorf("manifest overwrite: %v", err)
	}

	// Option validation.
	for _, tc := range []ShardOptions{
		{Seed: 1, Runs: 0, Shards: 1},
		{Seed: 1, Runs: 100, Shards: 0},
		{Seed: 1, Runs: 100, Shards: 1, BlockSize: -3},
		{Seed: 1, Runs: 64, Shards: 8, BlockSize: 32}, // 2 blocks < 8 shards
	} {
		if _, err := CampaignPlansSharded(plans, factory, tc); err == nil {
			t.Errorf("options %+v accepted", tc)
		}
	}
	if _, err := CampaignPlansShard(plans, factory, base, 7); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := CampaignPlansShard(nil, factory, base, 0); err == nil {
		t.Error("empty plan set accepted")
	}
}

func mustFingerprint(t *testing.T, so ShardOptions, plans [][]core.Segment) CampaignFingerprint {
	t.Helper()
	fp, err := so.resolve(plans)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestShardWorkerDiscipline is the S1 oversubscription audit: when
// expt-style row jobs (an outer worker pool) invoke sharded campaigns
// with Workers: 1, total block concurrency never exceeds the outer pool
// size; and a default-Workers campaign alone never exceeds GOMAXPROCS.
func TestShardWorkerDiscipline(t *testing.T) {
	plans := shardTestPlans()
	factory := ExponentialFactory(0.08)
	var inFlight, peak atomic.Int64
	testHookBlock = func(enter bool) {
		if enter {
			v := inFlight.Add(1)
			for {
				p := peak.Load()
				if v <= p || peak.CompareAndSwap(p, v) {
					break
				}
			}
		} else {
			inFlight.Add(-1)
		}
	}
	defer func() { testHookBlock = nil }()

	const outer = 4
	var wg sync.WaitGroup
	for j := 0; j < outer; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			so := ShardOptions{
				Options:   Options{Downtime: 0.3, Workers: 1},
				Seed:      uint64(j),
				Runs:      512,
				Shards:    2,
				BlockSize: 32,
			}
			if _, err := CampaignPlansSharded(plans, factory, so); err != nil {
				t.Error(err)
			}
		}(j)
	}
	wg.Wait()
	if p := peak.Load(); p > outer {
		t.Errorf("outer pool of %d with Workers:1 campaigns reached %d concurrent blocks", outer, p)
	}

	inFlight.Store(0)
	peak.Store(0)
	so := ShardOptions{Options: Options{Downtime: 0.3}, Seed: 5, Runs: 1024, Shards: 4, BlockSize: 32}
	if _, err := CampaignPlansSharded(plans, factory, so); err != nil {
		t.Fatal(err)
	}
	if maxProcs := int64(runtime.GOMAXPROCS(0)); peak.Load() > maxProcs {
		t.Errorf("default-Workers campaign reached %d concurrent blocks, GOMAXPROCS=%d", peak.Load(), maxProcs)
	}

	// Spilled campaigns parallelize over shards instead of blocks; the
	// same bound applies.
	inFlight.Store(0)
	peak.Store(0)
	so.SpillDir = t.TempDir()
	if _, err := CampaignPlansSharded(plans, factory, so); err != nil {
		t.Fatal(err)
	}
	if maxProcs := int64(runtime.GOMAXPROCS(0)); peak.Load() > maxProcs {
		t.Errorf("spilled campaign reached %d concurrent blocks, GOMAXPROCS=%d", peak.Load(), maxProcs)
	}
}
