package sim

// Sharded, resumable CRN campaigns. The unit of determinism is the
// *block*: a campaign of R replications is split into fixed-size blocks
// whose count and contents depend only on (seed, runs, block size,
// round) — never on the shard count or worker count. Block b draws its
// randomness from the stateless derivation
//
//	rng.New(seed).Keyed(round).Keyed(b)
//
// and runs the PR 3 CRN trace-sharing loop over its replications. A
// shard owns a contiguous range of blocks; merging folds the per-block
// partial aggregates in global block order. Because the fold units and
// the fold order are fixed, the merged means and paired deltas are
// bit-identical for ANY shard count and ANY worker count — including
// shards computed by separate processes and merged from their
// serialized results (Summary.Merge is not floating-point associative,
// so this property is exactly as strong as the fixed fold structure and
// no stronger). T-digest sketches fold per shard and are pinned
// *quantile-equivalent*, not bitwise, across shard counts; see
// stats.TDigest.
//
// Resumability rides on the same block structure: with a spill
// directory set, each shard writes its recorded failure traces block by
// block (failure.TraceSpillWriter) and its final aggregate as JSON. A
// killed campaign re-runs cheaply: finished shards load their results,
// unfinished shards replay complete spilled blocks bit-identically
// (failure.ReplayTrace) and simulate only the missing ones.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fsx"
	"repro/internal/rng"
	"repro/internal/stats"
)

// maxCampaignBlocks caps the number of blocks (and hence the per-block
// partial aggregates a merge retains) when the block size is derived
// automatically.
const maxCampaignBlocks = 4096

// minCampaignBlockSize keeps blocks from degenerating to a handful of
// replications, which would make the per-block setup (factory call,
// trace allocation) a measurable fraction of the work.
const minCampaignBlockSize = 32

// CampaignFingerprint pins the exact sampling schedule of a sharded
// campaign. Two invocations produce mergeable shards if and only if
// their fingerprints are equal; every cross-process entry point checks
// this and fails loudly on mismatch. Workers is deliberately absent:
// the block model makes results independent of the worker count.
type CampaignFingerprint struct {
	Seed       uint64 `json:"seed"`
	Runs       int    `json:"runs"`
	BlockSize  int    `json:"block_size"`
	Shards     int    `json:"shards"`
	Candidates int    `json:"candidates"`
	Round      uint64 `json:"round"`
	// Workload hashes the candidate plans and the option fields that
	// alter simulated trajectories (downtime, failure budget), so a
	// merge of shards simulated against different workloads is refused
	// even when their seeds agree.
	Workload string `json:"workload"`
}

// String renders the fingerprint for error messages and spill headers.
func (f CampaignFingerprint) String() string {
	return fmt.Sprintf("seed=%d runs=%d block=%d shards=%d cands=%d round=%d workload=%s",
		f.Seed, f.Runs, f.BlockSize, f.Shards, f.Candidates, f.Round, f.Workload)
}

// numBlocks returns the block count of the campaign.
func (f CampaignFingerprint) numBlocks() int {
	return (f.Runs + f.BlockSize - 1) / f.BlockSize
}

// blockRange returns the half-open block interval owned by shard s:
// contiguous, balanced to within one block.
func (f CampaignFingerprint) blockRange(s int) (lo, hi int) {
	nb := f.numBlocks()
	return s * nb / f.Shards, (s + 1) * nb / f.Shards
}

// blockRuns returns the replication count of block b.
func (f CampaignFingerprint) blockRuns(b int) int {
	if lo := b * f.BlockSize; lo+f.BlockSize > f.Runs {
		return f.Runs - lo
	}
	return f.BlockSize
}

// ShardOptions configures a sharded campaign. The embedded Options are
// honoured as in CampaignPlans, except that Workers no longer affects
// results — only wall-clock time.
type ShardOptions struct {
	Options
	// Seed is the campaign-level seed; shards derive their block
	// streams from it statelessly, so separate processes agree.
	Seed uint64
	// Runs is the total replication count across all shards.
	Runs int
	// Shards is the number of partitions (≥ 1).
	Shards int
	// BlockSize overrides the deterministic-fold unit; 0 derives
	// max(minCampaignBlockSize, ceil(Runs/maxCampaignBlocks)). The
	// resolved value is part of the fingerprint: merges across
	// different block sizes are refused.
	BlockSize int
	// Round salts every block stream; adaptive campaigns bump it per
	// round so extension rounds draw fresh randomness.
	Round uint64
	// SpillDir, when set, makes the campaign resumable: each shard
	// writes block traces to <dir>/shard-NNNN.trace as it goes and its
	// aggregate to <dir>/shard-NNNN.json when done. On re-invocation,
	// finished shards are loaded and interrupted ones replayed
	// bit-identically from their spills.
	SpillDir string
}

// resolve validates the options and computes the fingerprint.
func (so ShardOptions) resolve(plans [][]core.Segment) (CampaignFingerprint, error) {
	if so.Runs <= 0 {
		return CampaignFingerprint{}, fmt.Errorf("sim: run count must be positive, got %d", so.Runs)
	}
	if so.Shards <= 0 {
		return CampaignFingerprint{}, fmt.Errorf("sim: shard count must be positive, got %d", so.Shards)
	}
	if len(plans) == 0 {
		return CampaignFingerprint{}, fmt.Errorf("sim: campaign needs at least one candidate plan")
	}
	if so.Downtime < 0 {
		return CampaignFingerprint{}, fmt.Errorf("sim: negative downtime %v", so.Downtime)
	}
	bs := so.BlockSize
	if bs < 0 {
		return CampaignFingerprint{}, fmt.Errorf("sim: negative block size %d", so.BlockSize)
	}
	if bs == 0 {
		bs = (so.Runs + maxCampaignBlocks - 1) / maxCampaignBlocks
		if bs < minCampaignBlockSize {
			bs = minCampaignBlockSize
		}
	}
	fp := CampaignFingerprint{
		Seed:       so.Seed,
		Runs:       so.Runs,
		BlockSize:  bs,
		Shards:     so.Shards,
		Candidates: len(plans),
		Round:      so.Round,
		Workload:   workloadHash(plans, so.Options),
	}
	if nb := fp.numBlocks(); so.Shards > nb {
		return CampaignFingerprint{}, fmt.Errorf(
			"sim: %d shards exceed the campaign's %d blocks (runs=%d, block=%d); lower the shard count or the block size",
			so.Shards, nb, so.Runs, bs)
	}
	return fp, nil
}

// Fingerprint resolves the options against a candidate set and returns
// the campaign fingerprint — what a coordinating caller (e.g. a CLI
// writing a campaign manifest before dispatching shards to separate
// invocations) must agree on for the shards to merge.
func (so ShardOptions) Fingerprint(plans [][]core.Segment) (CampaignFingerprint, error) {
	return so.resolve(plans)
}

// workloadHash digests everything that shapes simulated trajectories:
// the candidate segment structure, the downtime and the failure budget.
func workloadHash(plans [][]core.Segment, opts Options) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	put(opts.Downtime)
	binary.LittleEndian.PutUint64(buf[:], uint64(opts.maxFailures()))
	h.Write(buf[:])
	for _, plan := range plans {
		h.Write([]byte{0xff})
		for _, seg := range plan {
			put(seg.Work)
			put(seg.Checkpoint)
			put(seg.Recovery)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// BlockAggregate is one block's partial campaign result: the fold unit
// of the cross-shard merge.
type BlockAggregate struct {
	Block   int             `json:"block"`
	Runs    int             `json:"runs"`
	Results []MCResult      `json:"results"`
	Delta   []stats.Summary `json:"delta"`
}

// ShardResult is one shard's complete output: per-block partials (kept
// separate so the merge can fold in global block order) plus
// per-candidate makespan digests folded over the shard's blocks.
type ShardResult struct {
	Fingerprint CampaignFingerprint `json:"fingerprint"`
	Shard       int                 `json:"shard"`
	Blocks      []BlockAggregate    `json:"blocks"`
	Digests     []*stats.TDigest    `json:"digests"`
}

// testHookBlock, when non-nil, brackets every block execution. The
// oversubscription audit uses it to measure peak block concurrency.
var testHookBlock func(enter bool)

// runBlock executes one block of the CRN loop. When replay is non-nil
// the block re-materializes those recorded traces instead of drawing
// from the factory; when rec is non-nil each replication's recorded
// gaps are appended to it (the caller spills them).
func runBlock(plans [][]core.Segment, factory ProcessFactory, opts Options, fp CampaignFingerprint, block int, replay *failure.SpilledBlock, rec *[][]float64) (BlockAggregate, []*stats.TDigest, error) {
	if testHookBlock != nil {
		testHookBlock(true)
		defer testHookBlock(false)
	}
	cands := len(plans)
	agg := BlockAggregate{
		Block:   block,
		Runs:    fp.blockRuns(block),
		Results: make([]MCResult, cands),
		Delta:   make([]stats.Summary, cands),
	}
	digests := make([]*stats.TDigest, cands)
	for i := range digests {
		digests[i] = stats.NewTDigest(stats.DefaultTDigestCompression)
	}
	makespans := make([]float64, cands)

	if replay != nil && len(replay.Reps) != agg.Runs {
		return BlockAggregate{}, nil, fmt.Errorf(
			"sim: spilled block %d holds %d replications, campaign %s expects %d — spill belongs to a different campaign",
			block, len(replay.Reps), fp, agg.Runs)
	}

	stream := rng.New(fp.Seed).Keyed(fp.Round).Keyed(uint64(block))
	var trace *failure.RecordedTrace
	var cursor *failure.TraceCursor
	var resettable bool
	if replay == nil {
		src := factory(stream)
		_, resettable = src.(failure.Resettable)
		trace = failure.NewRecordedTrace(src)
		cursor = trace.Cursor()
	}
	for rep := 0; rep < agg.Runs; rep++ {
		if replay != nil {
			trace = failure.ReplayTrace(replay.Reps[rep], 0)
			cursor = trace.Cursor()
		} else if rep > 0 {
			if resettable {
				trace.Reset()
			} else {
				src := factory(stream)
				trace = failure.NewRecordedTrace(src)
				cursor = trace.Cursor()
			}
		}
		for cand := 0; cand < cands; cand++ {
			cursor.Reset()
			rs, err := Run(plans[cand], cursor, opts)
			if err != nil {
				return BlockAggregate{}, nil, err
			}
			agg.Results[cand].add(rs)
			digests[cand].Add(rs.Makespan)
			makespans[cand] = rs.Makespan
		}
		if replay != nil && trace.Exhausted() {
			return BlockAggregate{}, nil, fmt.Errorf(
				"sim: replay of block %d replication %d exhausted its spilled trace — spill was recorded under a different workload than %s",
				block, rep, fp)
		}
		for cand := range agg.Delta {
			agg.Delta[cand].Add(makespans[cand] - makespans[0])
		}
		if rec != nil {
			*rec = append(*rec, append([]float64(nil), trace.Gaps()...))
		}
	}
	return agg, digests, nil
}

// foldBlockDigests folds per-block digests into the shard accumulators
// in block order (blocks arrive pre-sorted by the callers).
func foldBlockDigests(acc, block []*stats.TDigest) []*stats.TDigest {
	if acc == nil {
		acc = make([]*stats.TDigest, len(block))
		for i := range acc {
			acc[i] = stats.NewTDigest(stats.DefaultTDigestCompression)
		}
	}
	for i := range acc {
		acc[i].Merge(block[i])
	}
	return acc
}

// CampaignPlansShard runs the blocks owned by one shard of a sharded
// CRN campaign and returns that shard's partial result. Shards are
// independent: separate processes may each run one (sharing only the
// ShardOptions) and merge the results with MergeShards.
//
// With SpillDir set the shard is resumable: an existing result file for
// the same fingerprint is returned as-is; an interrupted spill has its
// complete blocks replayed bit-identically and only the rest simulated.
// A result or spill recorded under a different fingerprint is a loud
// error, never silently recomputed.
func CampaignPlansShard(plans [][]core.Segment, factory ProcessFactory, so ShardOptions, shard int) (*ShardResult, error) {
	fp, err := so.resolve(plans)
	if err != nil {
		return nil, err
	}
	if shard < 0 || shard >= fp.Shards {
		return nil, fmt.Errorf("sim: shard %d out of range [0, %d)", shard, fp.Shards)
	}
	if so.SpillDir != "" {
		return shardWithSpill(plans, factory, so, fp, shard)
	}
	return shardInMemory(plans, factory, so, fp, shard)
}

// shardInMemory executes a shard's blocks across the worker pool; block
// results land in a slice indexed by block, so the fold order is
// independent of scheduling.
func shardInMemory(plans [][]core.Segment, factory ProcessFactory, so ShardOptions, fp CampaignFingerprint, shard int) (*ShardResult, error) {
	lo, hi := fp.blockRange(shard)
	n := hi - lo
	out := &ShardResult{Fingerprint: fp, Shard: shard, Blocks: make([]BlockAggregate, n)}
	digests := make([][]*stats.TDigest, n)
	workers := so.workerCount(n)
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				agg, dig, err := runBlock(plans, factory, so.Options, fp, lo+i, nil, nil)
				if err != nil {
					errs[w] = err
					return
				}
				out.Blocks[i] = agg
				digests[i] = dig
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, dig := range digests {
		out.Digests = foldBlockDigests(out.Digests, dig)
	}
	return out, nil
}

// shardResultPath and shardSpillPath name a shard's artifacts inside a
// campaign spill directory.
func shardResultPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.json", shard))
}

func shardSpillPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.trace", shard))
}

// shardWithSpill is the resumable path: blocks run sequentially (the
// spill is an ordered log), each block's traces written behind it.
func shardWithSpill(plans [][]core.Segment, factory ProcessFactory, so ShardOptions, fp CampaignFingerprint, shard int) (*ShardResult, error) {
	if err := os.MkdirAll(so.SpillDir, 0o755); err != nil {
		return nil, err
	}
	// A finished shard: load, verify, return.
	resPath := shardResultPath(so.SpillDir, shard)
	if data, err := os.ReadFile(resPath); err == nil {
		var prior ShardResult
		if err := json.Unmarshal(data, &prior); err != nil {
			return nil, fmt.Errorf("sim: corrupt shard result %s: %w", resPath, err)
		}
		if prior.Fingerprint != fp {
			return nil, fmt.Errorf("sim: shard result %s was produced by campaign\n  %s\nbut this invocation is\n  %s\nrefusing to mix them", resPath, prior.Fingerprint, fp)
		}
		if prior.Shard != shard {
			return nil, fmt.Errorf("sim: shard result %s claims shard %d", resPath, prior.Shard)
		}
		return &prior, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}

	lo, hi := fp.blockRange(shard)
	out := &ShardResult{Fingerprint: fp, Shard: shard}
	spillPath := shardSpillPath(so.SpillDir, shard)
	var writer *failure.TraceSpillWriter
	nextBlock := lo

	if _, err := os.Stat(spillPath); err == nil {
		// Interrupted run: replay the complete prefix bit-identically.
		blocks, meta, _, offset, _, err := failure.ReadTraceSpill(spillPath)
		if err != nil {
			return nil, err
		}
		if meta != fp.String() {
			return nil, fmt.Errorf("sim: spill %s was recorded by campaign\n  %s\nbut this invocation is\n  %s\nrefusing to replay it", spillPath, meta, fp)
		}
		for _, blk := range blocks {
			if blk.Index != nextBlock {
				return nil, fmt.Errorf("sim: spill %s holds block %d where block %d was expected", spillPath, blk.Index, nextBlock)
			}
			blk := blk
			agg, dig, err := runBlock(plans, factory, so.Options, fp, blk.Index, &blk, nil)
			if err != nil {
				return nil, err
			}
			out.Blocks = append(out.Blocks, agg)
			out.Digests = foldBlockDigests(out.Digests, dig)
			nextBlock++
		}
		// Truncate the partial tail (if any) and continue appending.
		writer, err = failure.AppendTraceSpill(spillPath, offset)
		if err != nil {
			return nil, err
		}
	} else {
		writer, err = failure.CreateTraceSpill(spillPath, fp.String(), 0)
		if err != nil {
			return nil, err
		}
	}
	defer writer.Close()

	for b := nextBlock; b < hi; b++ {
		var rec [][]float64
		agg, dig, err := runBlock(plans, factory, so.Options, fp, b, nil, &rec)
		if err != nil {
			return nil, err
		}
		if err := writer.WriteBlock(b, rec); err != nil {
			return nil, err
		}
		out.Blocks = append(out.Blocks, agg)
		out.Digests = foldBlockDigests(out.Digests, dig)
	}
	if err := writer.Close(); err != nil {
		return nil, err
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, err
	}
	if err := atomicWriteFile(resPath, data); err != nil {
		return nil, err
	}
	return out, nil
}

// atomicWriteFile writes data to path via fsx.AtomicWriteFile: temp file,
// fsync, rename, directory fsync. A kill mid-write never leaves a
// half-written result to be mistaken for a finished shard, and a host
// crash after it returns cannot roll the file back to empty.
func atomicWriteFile(path string, data []byte) error {
	return fsx.AtomicWriteFile(path, data)
}

// MergeShards folds shard results into the campaign aggregate. Every
// shard must carry the same fingerprint, each shard index exactly once,
// and together they must cover every block — anything else is a loud
// error. Means and deltas fold in global block order (bit-identical for
// any shard count); digests fold in shard order (quantile-equivalent).
func MergeShards(parts []*ShardResult) (CampaignResult, error) {
	if len(parts) == 0 {
		return CampaignResult{}, fmt.Errorf("sim: no shard results to merge")
	}
	fp := parts[0].Fingerprint
	seen := make(map[int]bool, len(parts))
	for _, p := range parts {
		if p.Fingerprint != fp {
			return CampaignResult{}, fmt.Errorf("sim: shard fingerprints differ:\n  %s\n  %s\nrefusing to merge results from different campaigns", fp, p.Fingerprint)
		}
		if p.Shard < 0 || p.Shard >= fp.Shards {
			return CampaignResult{}, fmt.Errorf("sim: shard index %d out of range [0, %d)", p.Shard, fp.Shards)
		}
		if seen[p.Shard] {
			return CampaignResult{}, fmt.Errorf("sim: shard %d present twice in merge", p.Shard)
		}
		seen[p.Shard] = true
	}
	if len(parts) != fp.Shards {
		missing := make([]string, 0)
		for s := 0; s < fp.Shards; s++ {
			if !seen[s] {
				missing = append(missing, fmt.Sprint(s))
			}
		}
		return CampaignResult{}, fmt.Errorf("sim: merge has %d of %d shards (missing %s)", len(parts), fp.Shards, strings.Join(missing, ", "))
	}
	ordered := append([]*ShardResult(nil), parts...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Shard < ordered[b].Shard })

	out := CampaignResult{
		Results: make([]MCResult, fp.Candidates),
		Delta:   make([]stats.Summary, fp.Candidates),
	}
	nextBlock := 0
	for _, p := range ordered {
		lo, hi := fp.blockRange(p.Shard)
		if len(p.Blocks) != hi-lo {
			return CampaignResult{}, fmt.Errorf("sim: shard %d carries %d blocks, expected %d", p.Shard, len(p.Blocks), hi-lo)
		}
		for i, blk := range p.Blocks {
			if blk.Block != nextBlock {
				return CampaignResult{}, fmt.Errorf("sim: shard %d block %d has index %d, expected %d", p.Shard, i, blk.Block, nextBlock)
			}
			if len(blk.Results) != fp.Candidates || len(blk.Delta) != fp.Candidates {
				return CampaignResult{}, fmt.Errorf("sim: shard %d block %d carries %d candidates, fingerprint says %d", p.Shard, blk.Block, len(blk.Results), fp.Candidates)
			}
			if blk.Runs != fp.blockRuns(blk.Block) {
				return CampaignResult{}, fmt.Errorf("sim: shard %d block %d holds %d runs, expected %d", p.Shard, blk.Block, blk.Runs, fp.blockRuns(blk.Block))
			}
			for c := range out.Results {
				out.Results[c].merge(blk.Results[c])
				out.Delta[c].Merge(blk.Delta[c])
			}
			nextBlock++
		}
		if len(p.Digests) == fp.Candidates {
			if out.Digests == nil {
				out.Digests = make([]*stats.TDigest, fp.Candidates)
				for i := range out.Digests {
					out.Digests[i] = stats.NewTDigest(stats.DefaultTDigestCompression)
				}
			}
			for c := range out.Digests {
				out.Digests[c].Merge(p.Digests[c])
			}
		}
	}
	if nextBlock != fp.numBlocks() {
		return CampaignResult{}, fmt.Errorf("sim: merge covered %d of %d blocks", nextBlock, fp.numBlocks())
	}
	out.Runs = out.Results[0].Runs
	return out, nil
}

// CampaignPlansSharded runs every shard in this process and merges. It
// is the drop-in sharded equivalent of CampaignPlans: same CRN loop,
// but results are independent of both Shards and Workers, and carry
// per-candidate makespan digests.
//
// Without a spill directory, shards run back to back and each spreads
// its blocks over the worker pool. With one, the shards themselves
// spread over the pool (each owns its spill file) and run their blocks
// sequentially — total concurrency stays at Workers either way.
func CampaignPlansSharded(plans [][]core.Segment, factory ProcessFactory, so ShardOptions) (CampaignResult, error) {
	fp, err := so.resolve(plans)
	if err != nil {
		return CampaignResult{}, err
	}
	parts := make([]*ShardResult, fp.Shards)
	if so.SpillDir == "" {
		for s := 0; s < fp.Shards; s++ {
			parts[s], err = CampaignPlansShard(plans, factory, so, s)
			if err != nil {
				return CampaignResult{}, err
			}
		}
		return MergeShards(parts)
	}
	workers := so.workerCount(fp.Shards)
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= fp.Shards {
					return
				}
				res, err := CampaignPlansShard(plans, factory, so, s)
				if err != nil {
					errs[w] = err
					return
				}
				parts[s] = res
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return CampaignResult{}, err
		}
	}
	return MergeShards(parts)
}

// campaignManifest is the cross-invocation coordination record a spill
// directory carries: the fingerprint every shard invocation must match.
type campaignManifest struct {
	Fingerprint CampaignFingerprint `json:"fingerprint"`
}

const campaignManifestName = "campaign.json"

// WriteCampaignManifest records the campaign fingerprint in dir. An
// existing manifest for a different fingerprint is a loud error; an
// identical one is idempotent.
func WriteCampaignManifest(dir string, fp CampaignFingerprint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, campaignManifestName)
	if prior, err := ReadCampaignManifest(dir); err == nil {
		if prior != fp {
			return fmt.Errorf("sim: %s already holds campaign\n  %s\nbut this invocation is\n  %s\nuse a fresh directory or matching parameters", path, prior, fp)
		}
		return nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	data, err := json.MarshalIndent(campaignManifest{Fingerprint: fp}, "", "  ")
	if err != nil {
		return err
	}
	return atomicWriteFile(path, data)
}

// ReadCampaignManifest loads the fingerprint recorded in dir.
// os.ErrNotExist when the directory has no manifest.
func ReadCampaignManifest(dir string) (CampaignFingerprint, error) {
	data, err := os.ReadFile(filepath.Join(dir, campaignManifestName))
	if err != nil {
		return CampaignFingerprint{}, err
	}
	var m campaignManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return CampaignFingerprint{}, fmt.Errorf("sim: corrupt campaign manifest in %s: %w", dir, err)
	}
	return m.Fingerprint, nil
}

// LoadCampaignDir loads every finished shard result present in dir,
// verifying each against the manifest. Missing shards are not an error
// here — MergeShards reports exactly which are absent.
func LoadCampaignDir(dir string) ([]*ShardResult, error) {
	fp, err := ReadCampaignManifest(dir)
	if err != nil {
		return nil, err
	}
	var parts []*ShardResult
	for s := 0; s < fp.Shards; s++ {
		data, err := os.ReadFile(shardResultPath(dir, s))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		var sr ShardResult
		if err := json.Unmarshal(data, &sr); err != nil {
			return nil, fmt.Errorf("sim: corrupt shard result for shard %d in %s: %w", s, dir, err)
		}
		if sr.Fingerprint != fp {
			return nil, fmt.Errorf("sim: shard %d in %s was produced by campaign\n  %s\nbut the manifest says\n  %s", s, dir, sr.Fingerprint, fp)
		}
		parts = append(parts, &sr)
	}
	return parts, nil
}
