package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/stats"
)

// MakespanDistribution summarizes the full distribution of simulated
// makespans — mean and variance come from the analytic formulas, but
// tail quantiles (deadlines, SLOs) only come from sampling.
type MakespanDistribution struct {
	// Summary holds the moments.
	Summary stats.Summary
	// P50, P90, P99, P999 are makespan quantiles.
	P50, P90, P99, P999 float64
	// Samples is the number of runs.
	Samples int
}

// EstimateMakespanDistribution simulates the segments and returns the
// distribution of makespans (quantiles require retaining samples, so
// memory is O(runs)). Like MonteCarlo, it reuses one resettable process
// across runs, so beyond the retained samples the run loop is
// allocation-free.
func EstimateMakespanDistribution(segments []core.Segment, factory ProcessFactory, opts Options, runs int, seed *rng.Stream) (MakespanDistribution, error) {
	if runs <= 0 {
		return MakespanDistribution{}, fmt.Errorf("sim: run count must be positive, got %d", runs)
	}
	samples := make([]float64, 0, runs)
	var out MakespanDistribution
	var proc failure.Process
	for i := 0; i < runs; i++ {
		if res, ok := proc.(failure.Resettable); ok {
			res.Reset()
		} else {
			proc = factory(seed)
		}
		rs, err := Run(segments, proc, opts)
		if err != nil {
			return MakespanDistribution{}, err
		}
		samples = append(samples, rs.Makespan)
		out.Summary.Add(rs.Makespan)
	}
	qs := stats.Quantiles(samples, 0.5, 0.9, 0.99, 0.999)
	out.P50, out.P90, out.P99, out.P999 = qs[0], qs[1], qs[2], qs[3]
	out.Samples = runs
	return out, nil
}

// PlanReport is a one-stop analytical + simulated assessment of a chain
// plan: the output of cmd/chkptplan's report mode and the facade's
// recommended entry point for plan evaluation.
type PlanReport struct {
	// Expected is the exact expected makespan (Proposition 1 per segment).
	Expected float64
	// StdDev is the exact makespan standard deviation (second-moment
	// extension of the Proposition 1 recursion).
	StdDev float64
	// FailureFree is the makespan with no failure.
	FailureFree float64
	// ExpectedWaste is Expected/FailureFree − 1.
	ExpectedWaste float64
	// Checkpoints is the number of checkpoints in the plan.
	Checkpoints int
	// Segments lists the plan's segments.
	Segments []core.Segment
}

// Report assembles the analytical PlanReport for a checkpoint vector.
func Report(cp *core.ChainProblem, checkpointAfter []bool) (PlanReport, error) {
	segs, err := cp.Segments(checkpointAfter)
	if err != nil {
		return PlanReport{}, err
	}
	e, err := cp.Makespan(checkpointAfter)
	if err != nil {
		return PlanReport{}, err
	}
	v, err := cp.MakespanVariance(checkpointAfter)
	if err != nil {
		return PlanReport{}, err
	}
	ff, err := cp.FailureFreeMakespan(checkpointAfter)
	if err != nil {
		return PlanReport{}, err
	}
	rep := PlanReport{
		Expected:    e,
		FailureFree: ff,
		Checkpoints: len(segs),
		Segments:    segs,
	}
	if v > 0 {
		rep.StdDev = math.Sqrt(v)
	}
	if ff > 0 {
		rep.ExpectedWaste = e/ff - 1
	}
	return rep, nil
}
