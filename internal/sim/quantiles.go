package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/stats"
)

// MakespanDistribution summarizes the full distribution of simulated
// makespans — mean and variance come from the analytic formulas, but
// tail quantiles (deadlines, SLOs) only come from sampling.
type MakespanDistribution struct {
	// Summary holds the moments.
	Summary stats.Summary
	// P50, P90, P99, P999 are makespan quantiles.
	P50, P90, P99, P999 float64
	// Samples is the number of runs.
	Samples int
	// Streamed reports whether the quantiles came from the O(1)-memory P²
	// estimators (run count above the retention threshold) rather than
	// the exact sorted sample.
	Streamed bool
}

// DefaultQuantileRetention is the largest campaign whose makespan samples
// EstimateMakespanDistribution retains for exact sort-based quantiles
// when Options.QuantileRetention is unset. Beyond it the estimator
// switches to streaming P² quantiles, making memory independent of the
// run count (million-run campaigns cost five markers per quantile instead
// of 8 MB per million runs).
const DefaultQuantileRetention = 262_144

// quantileRetention resolves the retention threshold: 0 means the
// default, negative forces streaming.
func (o Options) quantileRetention() int {
	switch {
	case o.QuantileRetention > 0:
		return o.QuantileRetention
	case o.QuantileRetention < 0:
		return 0
	default:
		return DefaultQuantileRetention
	}
}

// EstimateMakespanDistribution simulates the segments and returns the
// distribution of makespans. Campaigns up to the retention threshold
// (Options.QuantileRetention) retain every sample and report exact
// quantiles; larger campaigns stream through P² estimators in O(1)
// memory. The two paths consume identical variates, and the streaming
// estimates are cross-checked against the exact path by test. Like
// MonteCarlo, it reuses one resettable process across runs, so beyond
// the retained samples the run loop is allocation-free.
func EstimateMakespanDistribution(segments []core.Segment, factory ProcessFactory, opts Options, runs int, seed *rng.Stream) (MakespanDistribution, error) {
	if runs <= 0 {
		return MakespanDistribution{}, fmt.Errorf("sim: run count must be positive, got %d", runs)
	}
	out := MakespanDistribution{Streamed: runs > opts.quantileRetention()}
	var samples []float64
	var p50, p90, p99, p999 *stats.P2Quantile
	if out.Streamed {
		p50, p90, p99, p999 = stats.NewP2Quantile(0.5), stats.NewP2Quantile(0.9), stats.NewP2Quantile(0.99), stats.NewP2Quantile(0.999)
	} else {
		samples = make([]float64, 0, runs)
	}
	var proc failure.Process
	for i := 0; i < runs; i++ {
		if res, ok := proc.(failure.Resettable); ok {
			res.Reset()
		} else {
			proc = factory(seed)
		}
		rs, err := Run(segments, proc, opts)
		if err != nil {
			return MakespanDistribution{}, err
		}
		if out.Streamed {
			p50.Add(rs.Makespan)
			p90.Add(rs.Makespan)
			p99.Add(rs.Makespan)
			p999.Add(rs.Makespan)
		} else {
			samples = append(samples, rs.Makespan)
		}
		out.Summary.Add(rs.Makespan)
	}
	if out.Streamed {
		out.P50, out.P90, out.P99, out.P999 = p50.Value(), p90.Value(), p99.Value(), p999.Value()
	} else {
		qs := stats.Quantiles(samples, 0.5, 0.9, 0.99, 0.999)
		out.P50, out.P90, out.P99, out.P999 = qs[0], qs[1], qs[2], qs[3]
	}
	out.Samples = runs
	return out, nil
}

// PlanReport is a one-stop analytical + simulated assessment of a chain
// plan: the output of cmd/chkptplan's report mode and the facade's
// recommended entry point for plan evaluation.
type PlanReport struct {
	// Expected is the exact expected makespan (Proposition 1 per segment).
	Expected float64
	// StdDev is the exact makespan standard deviation (second-moment
	// extension of the Proposition 1 recursion).
	StdDev float64
	// FailureFree is the makespan with no failure.
	FailureFree float64
	// ExpectedWaste is Expected/FailureFree − 1.
	ExpectedWaste float64
	// Checkpoints is the number of checkpoints in the plan.
	Checkpoints int
	// Segments lists the plan's segments.
	Segments []core.Segment
}

// Report assembles the analytical PlanReport for a checkpoint vector.
func Report(cp *core.ChainProblem, checkpointAfter []bool) (PlanReport, error) {
	segs, err := cp.Segments(checkpointAfter)
	if err != nil {
		return PlanReport{}, err
	}
	e, err := cp.Makespan(checkpointAfter)
	if err != nil {
		return PlanReport{}, err
	}
	v, err := cp.MakespanVariance(checkpointAfter)
	if err != nil {
		return PlanReport{}, err
	}
	ff, err := cp.FailureFreeMakespan(checkpointAfter)
	if err != nil {
		return PlanReport{}, err
	}
	rep := PlanReport{
		Expected:    e,
		FailureFree: ff,
		Checkpoints: len(segs),
		Segments:    segs,
	}
	if v > 0 {
		rep.StdDev = math.Sqrt(v)
	}
	if ff > 0 {
		rep.ExpectedWaste = e/ff - 1
	}
	return rep, nil
}
