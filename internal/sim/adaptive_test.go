package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

// adaptiveTestPlans: a baseline, a near-twin (statistically hard to
// distinguish), and two clearly worse plans (separate immediately).
func adaptiveTestPlans() [][]core.Segment {
	seg := func(w, c, r float64) core.Segment { return core.Segment{Work: w, Checkpoint: c, Recovery: r} }
	return [][]core.Segment{
		{seg(5, 1, 0.5), seg(5, 1, 0.5)},                     // baseline
		{seg(5.001, 1, 0.5), seg(4.999, 1, 0.5)},             // near twin
		{seg(10, 1, 0.5)},                                    // fewer checkpoints
		{seg(2.5, 1, 0.5), seg(2.5, 1, 0.5), seg(5, 2, 0.5)}, // extra checkpoint cost
	}
}

// TestAdaptiveStopping pins the acceptance criterion: at equal final CI
// width, adaptive stopping spends at most half of what a fixed budget
// would — decided pairs stop sampling while the hard pair keeps going.
func TestAdaptiveStopping(t *testing.T) {
	plans := adaptiveTestPlans()
	factory := ExponentialFactory(0.08)
	so := ShardOptions{Options: Options{Downtime: 0.3, Workers: 1}, Seed: 31, Shards: 2}
	ao := AdaptiveOptions{
		TargetWidth: 0.002,
		InitialRuns: 1000,
		MaxRuns:     200_000,
	}
	res, err := CampaignPlansAdaptive(plans, factory, so, ao)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision[0] != DecisionBaseline {
		t.Errorf("candidate 0 decision %q", res.Decision[0])
	}
	for i := 1; i < len(plans); i++ {
		switch res.Decision[i] {
		case DecisionConverged:
			if res.Widths[i] > ao.TargetWidth {
				t.Errorf("candidate %d converged at width %v > target %v", i, res.Widths[i], ao.TargetWidth)
			}
		case DecisionSeparated:
			if m := math.Abs(res.Delta[i].Mean()); m <= res.Widths[i] {
				t.Errorf("candidate %d separated but |mean| %v ≤ width %v", i, m, res.Widths[i])
			}
		case DecisionBudget:
			if res.RunsPerCandidate[i] < ao.MaxRuns {
				t.Errorf("candidate %d hit budget at %d < MaxRuns %d", i, res.RunsPerCandidate[i], ao.MaxRuns)
			}
		default:
			t.Errorf("candidate %d undecided: %q", i, res.Decision[i])
		}
	}
	// The clearly-different plans must separate, and fast.
	for _, i := range []int{2, 3} {
		if res.Decision[i] != DecisionSeparated {
			t.Errorf("candidate %d: decision %q, want separated (delta mean %v ± %v)",
				i, res.Decision[i], res.Delta[i].Mean(), res.Widths[i])
		}
	}
	// The acceptance criterion: ≤ 50% of the fixed-budget cost.
	if res.Spent*2 > res.FixedSpent {
		t.Errorf("adaptive spent %d > 50%% of fixed budget %d", res.Spent, res.FixedSpent)
	}
	if res.Spent != sum(res.RunsPerCandidate) {
		t.Errorf("Spent %d inconsistent with per-candidate runs %v", res.Spent, res.RunsPerCandidate)
	}
	// Aggregates are consistent with the replication accounting.
	for i, r := range res.RunsPerCandidate {
		if res.Results[i].Runs != r {
			t.Errorf("candidate %d: %d aggregated runs, %d accounted", i, res.Results[i].Runs, r)
		}
		if int(res.Results[i].Makespan.N()) != r {
			t.Errorf("candidate %d: summary N %d vs runs %d", i, res.Results[i].Makespan.N(), r)
		}
		if got := res.Digests[i].N(); got != float64(r) {
			t.Errorf("candidate %d: digest N %v vs runs %d", i, got, r)
		}
	}

	// Determinism: the whole adaptive procedure replays bitwise.
	again, err := CampaignPlansAdaptive(plans, factory, so, ao)
	if err != nil {
		t.Fatal(err)
	}
	if again.Rounds != res.Rounds || again.Spent != res.Spent {
		t.Fatalf("rerun: %d rounds / %d spent vs %d / %d", again.Rounds, again.Spent, res.Rounds, res.Spent)
	}
	for i := range res.Results {
		if !sameMCResult(res.Results[i], again.Results[i]) || !sameSummary(res.Delta[i], again.Delta[i]) {
			t.Errorf("candidate %d: adaptive rerun differs", i)
		}
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func TestAdaptiveValidation(t *testing.T) {
	plans := adaptiveTestPlans()
	factory := ExponentialFactory(0.08)
	so := ShardOptions{Options: Options{Workers: 1}, Seed: 1, Shards: 1}
	good := AdaptiveOptions{TargetWidth: 0.1, MaxRuns: 1000}
	for name, tc := range map[string]struct {
		plans [][]core.Segment
		so    ShardOptions
		ao    AdaptiveOptions
		want  string
	}{
		"no width":    {plans, so, AdaptiveOptions{MaxRuns: 1000}, "target width"},
		"no budget":   {plans, so, AdaptiveOptions{TargetWidth: 0.1}, "MaxRuns"},
		"bad conf":    {plans, so, AdaptiveOptions{TargetWidth: 0.1, MaxRuns: 1000, Confidence: 1.5}, "confidence"},
		"bad growth":  {plans, so, AdaptiveOptions{TargetWidth: 0.1, MaxRuns: 1000, Growth: 0.5}, "growth"},
		"one plan":    {plans[:1], so, good, "baseline"},
		"spill set":   {plans, ShardOptions{Options: Options{Workers: 1}, Seed: 1, Shards: 1, SpillDir: t.TempDir()}, good, "not spillable"},
		"round taken": {plans, ShardOptions{Options: Options{Workers: 1}, Seed: 1, Shards: 1, Round: 3}, good, "round salt"},
	} {
		if _, err := CampaignPlansAdaptive(tc.plans, factory, tc.so, tc.ao); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", name, err, tc.want)
		}
	}
	// A trivially wide target converges everything in one round.
	res, err := CampaignPlansAdaptive(plans, factory, so, AdaptiveOptions{TargetWidth: 1e6, InitialRuns: 100, MaxRuns: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("wide target took %d rounds", res.Rounds)
	}
	for i := 1; i < len(plans); i++ {
		if res.Decision[i] != DecisionConverged {
			t.Errorf("candidate %d: %q", i, res.Decision[i])
		}
	}
}
