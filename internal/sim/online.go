package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Policy decides checkpoints online, while the workflow executes. Static
// placements are optimal for the memoryless core model (the future never
// changes), but under general laws the optimal decision depends on
// execution history — the paper's second difficulty with non-Exponential
// distributions. The online simulator makes that difference measurable.
type Policy interface {
	// ShouldCheckpoint is consulted right after the task at position pos
	// completes (the final position always checkpoints regardless).
	ShouldCheckpoint(state OnlineState) bool
	// Name identifies the policy in tables.
	Name() string
}

// OnlineState is what a policy may observe.
type OnlineState struct {
	// Position is the index of the just-completed task.
	Position int
	// Tasks is the total number of tasks.
	Tasks int
	// UnsecuredWork is the work executed since the last checkpoint.
	UnsecuredWork float64
	// NextWeight is the weight of the next task (0 at the end).
	NextWeight float64
	// NextCheckpointCost is the cost of checkpointing now.
	NextCheckpointCost float64
	// TimeSinceLastFailure is the elapsed time since the platform last
	// failed (or since the start if it never did).
	TimeSinceLastFailure float64
	// Failures counts failures so far in this run.
	Failures int
}

// StaticPolicy replays a precomputed placement.
type StaticPolicy struct {
	// CheckpointAfter is the placement to replay.
	CheckpointAfter []bool
	// Label names the placement's origin (e.g. "chain-dp").
	Label string
}

// ShouldCheckpoint implements Policy.
func (p StaticPolicy) ShouldCheckpoint(s OnlineState) bool {
	if s.Position >= len(p.CheckpointAfter) {
		return true
	}
	return p.CheckpointAfter[s.Position]
}

// Name implements Policy.
func (p StaticPolicy) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "static"
}

// HazardPolicy checkpoints when the expected loss of risking the next
// task exceeds the checkpoint cost: unsecured·h(t)·w_next > C. With a
// hazard that depends on the time since the last failure it adapts to
// history, which no static placement can.
type HazardPolicy struct {
	// Hazard is the platform hazard rate as a function of time since the
	// last failure.
	Hazard func(t float64) float64
}

// ShouldCheckpoint implements Policy.
func (p HazardPolicy) ShouldCheckpoint(s OnlineState) bool {
	if s.NextWeight == 0 {
		return true
	}
	risk := s.UnsecuredWork * p.Hazard(s.TimeSinceLastFailure) * s.NextWeight
	return risk > s.NextCheckpointCost
}

// Name implements Policy.
func (p HazardPolicy) Name() string { return "hazard" }

// WorkThresholdPolicy checkpoints once the unsecured work reaches a fixed
// threshold — the divisible-load periodic policy, online.
type WorkThresholdPolicy struct {
	// Threshold is the period (work units).
	Threshold float64
}

// ShouldCheckpoint implements Policy.
func (p WorkThresholdPolicy) ShouldCheckpoint(s OnlineState) bool {
	return s.UnsecuredWork >= p.Threshold
}

// Name implements Policy.
func (p WorkThresholdPolicy) Name() string { return "work-threshold" }

var (
	_ Policy = StaticPolicy{}
	_ Policy = HazardPolicy{}
	_ Policy = WorkThresholdPolicy{}
)

// RunOnline executes the chain problem under proc, consulting policy
// after every task. Unlike Run, rollback granularity is the task set
// since the last checkpoint (identical semantics, decided on the fly).
func RunOnline(cp *core.ChainProblem, policy Policy, proc failure.Process, opts Options) (RunStats, error) {
	if err := cp.Validate(); err != nil {
		return RunStats{}, err
	}
	if opts.Downtime < 0 {
		return RunStats{}, fmt.Errorf("sim: negative downtime %v", opts.Downtime)
	}
	n := cp.Len()
	var rs RunStats
	budget := opts.maxFailures()
	sinceFailure := 0.0

	// The segment currently being attempted starts at segStart; pos is
	// the next task to run within it.
	segStart := 0
	for segStart < n {
		// Run tasks one at a time until the policy checkpoints; on
		// failure, roll back to segStart.
		pos := segStart
		unsecured := 0.0
		restart := false
		for {
			dur := cp.Weights[pos]
			checkpointing := false
			// Decide checkpoint before knowing whether the task fails?
			// No: decide after the task completes. First execute the
			// task, then consult the policy, then maybe checkpoint.
			next := proc.NextFailure()
			if next < dur {
				// Failure mid-task.
				if err := onlineFailure(cp, segStart, &rs, proc, opts, &sinceFailure, next, budget); err != nil {
					return rs, err
				}
				restart = true
				break
			}
			proc.Advance(dur)
			rs.Makespan += dur
			rs.Useful += dur
			sinceFailure += dur
			unsecured += dur

			// Consult the policy (final task always checkpoints).
			state := OnlineState{
				Position:             pos,
				Tasks:                n,
				UnsecuredWork:        unsecured,
				NextCheckpointCost:   cp.Ckpt[pos],
				TimeSinceLastFailure: sinceFailure,
				Failures:             rs.Failures,
			}
			if pos+1 < n {
				state.NextWeight = cp.Weights[pos+1]
			}
			checkpointing = pos == n-1 || policy.ShouldCheckpoint(state)
			if checkpointing {
				cdur := cp.Ckpt[pos]
				cnext := proc.NextFailure()
				if cnext < cdur {
					if err := onlineFailure(cp, segStart, &rs, proc, opts, &sinceFailure, cnext, budget); err != nil {
						return rs, err
					}
					restart = true
					break
				}
				proc.Advance(cdur)
				rs.Makespan += cdur
				rs.Useful += cdur
				sinceFailure += cdur
				segStart = pos + 1
				break
			}
			pos++
		}
		if restart {
			continue
		}
	}
	return rs, nil
}

// onlineFailure accounts for a failure `next` time units into an attempt
// and performs downtime plus recovery to the segment's starting state.
func onlineFailure(cp *core.ChainProblem, segStart int, rs *RunStats, proc failure.Process, opts Options, sinceFailure *float64, next float64, budget int) error {
	rec := cp.InitialRecovery
	if segStart > 0 {
		rec = cp.Rec[segStart-1]
	}
	proc.ObserveFailure()
	rs.Makespan += next
	rs.Lost += next
	rs.Failures++
	*sinceFailure = 0
	if rs.Failures > budget {
		return ErrTooManyFailures
	}
	rs.Makespan += opts.Downtime
	rs.Downtime += opts.Downtime
	for {
		rnext := proc.NextFailure()
		if rnext >= rec {
			proc.Advance(rec)
			rs.Makespan += rec
			rs.RecoveryTime += rec
			*sinceFailure += rec
			return nil
		}
		proc.ObserveFailure()
		rs.Makespan += rnext
		rs.RecoveryTime += rnext
		rs.Failures++
		*sinceFailure = 0
		if rs.Failures > budget {
			return ErrTooManyFailures
		}
		rs.Makespan += opts.Downtime
		rs.Downtime += opts.Downtime
	}
}

// MonteCarloOnline runs RunOnline many times and summarizes makespans.
// Runs fan out over opts.Workers goroutines with per-worker split
// streams, exactly like MonteCarlo, so results are deterministic for a
// given (seed, Workers) pair; like MonteCarlo it reuses one resettable
// process per worker, so the per-run loop allocates nothing in its
// steady state.
func MonteCarloOnline(cp *core.ChainProblem, policy Policy, factory ProcessFactory, opts Options, runs int, seed *rng.Stream) (stats.Summary, error) {
	if runs <= 0 {
		return stats.Summary{}, fmt.Errorf("sim: run count must be positive, got %d", runs)
	}
	workers := opts.workerCount(runs)
	parts := make([]stats.Summary, workers)
	err := forWorkers(workers, runs, seed, func(w, count int, r *rng.Stream) error {
		var s stats.Summary
		var proc failure.Process
		for i := 0; i < count; i++ {
			if res, ok := proc.(failure.Resettable); ok {
				res.Reset()
			} else {
				proc = factory(r)
			}
			rs, err := RunOnline(cp, policy, proc, opts)
			if err != nil {
				return err
			}
			s.Add(rs.Makespan)
		}
		parts[w] = s
		return nil
	})
	if err != nil {
		return stats.Summary{}, err
	}
	var out stats.Summary
	for _, p := range parts {
		out.Merge(p)
	}
	return out, nil
}
