// Package dag provides the application task-graph model of the paper's
// framework (Section 2): a DAG G = (V, E) whose nodes are tasks weighted
// by computational weight w_i, checkpoint cost C_i and recovery cost R_i.
// Under the full-parallelism assumption the scheduler linearizes the DAG,
// so the package also provides topological machinery (orders, enumeration,
// chain detection) and generators for the workflow shapes cited in the
// paper's motivation (linear chains, fork–join pipelines, layered random
// DAGs, elimination fronts, Montage-like shapes).
package dag

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Task is a node of the application graph.
type Task struct {
	// ID is the task's index in the graph (0-based, assigned by AddTask).
	ID int
	// Name is an optional human-readable label.
	Name string
	// Weight is the computational weight w_i (time units of work).
	Weight float64
	// Checkpoint is the cost C_i of checkpointing right after this task.
	Checkpoint float64
	// Recovery is the cost R_i of recovering from the checkpoint taken
	// after this task.
	Recovery float64
}

// Graph is a directed acyclic application graph. The zero value is an
// empty graph ready for use.
type Graph struct {
	tasks []Task
	succ  [][]int
	pred  [][]int
	edges int
}

// ErrCycle is returned when an operation requires acyclicity and the graph
// has a directed cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddTask appends a task and returns its ID.
func (g *Graph) AddTask(t Task) (int, error) {
	if t.Weight < 0 || t.Checkpoint < 0 || t.Recovery < 0 {
		return 0, fmt.Errorf("dag: task %q has negative weight/checkpoint/recovery (%v, %v, %v)",
			t.Name, t.Weight, t.Checkpoint, t.Recovery)
	}
	t.ID = len(g.tasks)
	if t.Name == "" {
		t.Name = fmt.Sprintf("T%d", t.ID+1)
	}
	g.tasks = append(g.tasks, t)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return t.ID, nil
}

// MustAddTask is AddTask for callers with statically valid tasks
// (generators, tests); it panics on error.
func (g *Graph) MustAddTask(t Task) int {
	id, err := g.AddTask(t)
	if err != nil {
		panic(err)
	}
	return id
}

// AddEdge adds the dependence from → to (from must complete before to).
// Duplicate edges are rejected. Cycles are detected lazily by Validate and
// by the traversal functions.
func (g *Graph) AddEdge(from, to int) error {
	if err := g.checkID(from); err != nil {
		return err
	}
	if err := g.checkID(to); err != nil {
		return err
	}
	if from == to {
		return fmt.Errorf("dag: self-loop on task %d", from)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("dag: duplicate edge %d → %d", from, to)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge that panics on error, for generators and tests.
func (g *Graph) MustAddEdge(from, to int) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

func (g *Graph) checkID(id int) error {
	if id < 0 || id >= len(g.tasks) {
		return fmt.Errorf("dag: task id %d out of range [0, %d)", id, len(g.tasks))
	}
	return nil
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// EdgeCount returns the number of dependence edges.
func (g *Graph) EdgeCount() int { return g.edges }

// Task returns the task with the given ID.
func (g *Graph) Task(id int) Task { return g.tasks[id] }

// Tasks returns a copy of the task list in ID order.
func (g *Graph) Tasks() []Task {
	out := make([]Task, len(g.tasks))
	copy(out, g.tasks)
	return out
}

// Successors returns a copy of the direct successors of id.
func (g *Graph) Successors(id int) []int {
	out := make([]int, len(g.succ[id]))
	copy(out, g.succ[id])
	return out
}

// Predecessors returns a copy of the direct predecessors of id.
func (g *Graph) Predecessors(id int) []int {
	out := make([]int, len(g.pred[id]))
	copy(out, g.pred[id])
	return out
}

// TotalWeight returns Σ w_i.
func (g *Graph) TotalWeight() float64 {
	var sum float64
	for _, t := range g.tasks {
		sum += t.Weight
	}
	return sum
}

// SetCosts overwrites every task's checkpoint and recovery cost with the
// given constants, the homogeneous cost model of Proposition 2.
func (g *Graph) SetCosts(checkpoint, recovery float64) {
	for i := range g.tasks {
		g.tasks[i].Checkpoint = checkpoint
		g.tasks[i].Recovery = recovery
	}
}

// Validate checks structural invariants: acyclicity and cost sanity.
func (g *Graph) Validate() error {
	if _, err := g.TopologicalOrder(); err != nil {
		return err
	}
	for _, t := range g.tasks {
		if t.Weight < 0 || t.Checkpoint < 0 || t.Recovery < 0 {
			return fmt.Errorf("dag: task %d has negative parameters", t.ID)
		}
	}
	return nil
}

// TopologicalOrder returns task IDs in a deterministic (smallest-ID-first)
// topological order, or ErrCycle.
func (g *Graph) TopologicalOrder() ([]int, error) {
	n := len(g.tasks)
	indeg := make([]int, n)
	for i := range g.pred {
		indeg[i] = len(g.pred[i])
	}
	// Min-heap on IDs for determinism; n is small enough that a sorted
	// slice is fine and allocation-free enough.
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, s := range g.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsLinearChain reports whether the graph is a single linear chain
// T_{π(1)} → … → T_{π(n)}, and if so returns the chain order.
func (g *Graph) IsLinearChain() ([]int, bool) {
	n := len(g.tasks)
	if n == 0 {
		return nil, true
	}
	start := -1
	for i := 0; i < n; i++ {
		if len(g.succ[i]) > 1 || len(g.pred[i]) > 1 {
			return nil, false
		}
		if len(g.pred[i]) == 0 {
			if start != -1 {
				return nil, false
			}
			start = i
		}
	}
	if start == -1 {
		return nil, false // cyclic
	}
	order := make([]int, 0, n)
	for v := start; ; {
		order = append(order, v)
		if len(g.succ[v]) == 0 {
			break
		}
		v = g.succ[v][0]
	}
	if len(order) != n {
		return nil, false
	}
	return order, true
}

// IsIndependent reports whether the graph has no edges (the instance class
// of Proposition 2).
func (g *Graph) IsIndependent() bool { return g.edges == 0 }

// EachTopologicalOrder streams every linearization of the graph to fn,
// up to the given limit (0 means unlimited), in the lexicographic order
// the recursive enumeration produces. fn returning false stops the
// enumeration early. The order slice is reused between calls — callers
// that retain an order must copy it. Memory is O(n) regardless of how
// many of the (up to n!) orders are enumerated, which is what lets the
// exhaustive DAG solver act as a validation oracle without the O(n!·n)
// materialization the previous AllTopologicalOrders paid.
func (g *Graph) EachTopologicalOrder(limit int, fn func(order []int) bool) {
	n := len(g.tasks)
	if n == 0 {
		// The empty poset has exactly one (empty) linear extension,
		// matching what the materializing enumeration always produced.
		fn(nil)
		return
	}
	indeg := make([]int, n)
	for i := range g.pred {
		indeg[i] = len(g.pred[i])
	}
	cur := make([]int, 0, n)
	used := make([]bool, n)
	emitted := 0
	var rec func() bool
	rec = func() bool {
		if len(cur) == n {
			emitted++
			if !fn(cur) {
				return true
			}
			return limit > 0 && emitted >= limit
		}
		for v := 0; v < n; v++ {
			if used[v] || indeg[v] != 0 {
				continue
			}
			used[v] = true
			cur = append(cur, v)
			for _, s := range g.succ[v] {
				indeg[s]--
			}
			stop := rec()
			for _, s := range g.succ[v] {
				indeg[s]++
			}
			cur = cur[:len(cur)-1]
			used[v] = false
			if stop {
				return true
			}
		}
		return false
	}
	rec()
}

// CountTopologicalOrders counts the linearizations of the graph by
// streaming the enumeration, up to limit (0 means count all). For the
// count alone, Lattice.CountLinearExtensions is exponentially cheaper
// on non-antichain graphs; this function exists for graphs beyond the
// lattice's 64-task cap and for cross-checking the lattice count.
func (g *Graph) CountTopologicalOrders(limit int) int64 {
	var count int64
	g.EachTopologicalOrder(limit, func([]int) bool { count++; return true })
	return count
}

// AllTopologicalOrders materializes every linearization of the graph,
// up to the given limit (0 means unlimited). It costs O(#orders · n)
// memory; prefer EachTopologicalOrder for anything but small test
// graphs.
func (g *Graph) AllTopologicalOrders(limit int) [][]int {
	var out [][]int
	g.EachTopologicalOrder(limit, func(order []int) bool {
		out = append(out, append([]int(nil), order...))
		return true
	})
	return out
}

// CriticalPath returns the length of the longest weight path and one path
// achieving it. With full parallelism the critical path is a lower bound
// on any linearization's failure-free time only through its weights; it is
// exposed for workflow analysis and generators' tests.
func (g *Graph) CriticalPath() (float64, []int, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return 0, nil, err
	}
	n := len(g.tasks)
	dist := make([]float64, n)
	from := make([]int, n)
	for i := range from {
		from[i] = -1
	}
	var best int = -1
	for _, v := range order {
		dist[v] += g.tasks[v].Weight
		if best == -1 || dist[v] > dist[best] {
			best = v
		}
		for _, s := range g.succ[v] {
			if dist[v] > dist[s] {
				dist[s] = dist[v]
				from[s] = v
			}
		}
	}
	if best == -1 {
		return 0, nil, nil
	}
	var path []int
	for v := best; v != -1; v = from[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return dist[best], path, nil
}

// TransitiveClosure returns reach[i][j] = true iff there is a directed
// path from i to j.
func (g *Graph) TransitiveClosure() ([][]bool, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	n := len(g.tasks)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, s := range g.succ[v] {
			reach[v][s] = true
			for j := 0; j < n; j++ {
				if reach[s][j] {
					reach[v][j] = true
				}
			}
		}
	}
	return reach, nil
}

// TransitiveReduction returns a new graph with the same tasks and the
// minimal edge set preserving reachability.
func (g *Graph) TransitiveReduction() (*Graph, error) {
	reach, err := g.TransitiveClosure()
	if err != nil {
		return nil, err
	}
	out := New()
	for _, t := range g.tasks {
		out.MustAddTask(Task{Name: t.Name, Weight: t.Weight, Checkpoint: t.Checkpoint, Recovery: t.Recovery})
	}
	for v := range g.succ {
		for _, s := range g.succ[v] {
			// Edge v→s is redundant iff some other successor of v reaches s.
			redundant := false
			for _, mid := range g.succ[v] {
				if mid != s && reach[mid][s] {
					redundant = true
					break
				}
			}
			if !redundant {
				out.MustAddEdge(v, s)
			}
		}
	}
	return out, nil
}

// Sources returns the IDs with no predecessors.
func (g *Graph) Sources() []int {
	var out []int
	for i := range g.pred {
		if len(g.pred[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Sinks returns the IDs with no successors.
func (g *Graph) Sinks() []int {
	var out []int
	for i := range g.succ {
		if len(g.succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// DOT renders the graph in Graphviz DOT format, with weights as labels.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for _, t := range g.tasks {
		fmt.Fprintf(&b, "  t%d [label=\"%s\\nw=%.3g C=%.3g\"];\n", t.ID, t.Name, t.Weight, t.Checkpoint)
	}
	for v, ss := range g.succ {
		for _, s := range ss {
			fmt.Fprintf(&b, "  t%d -> t%d;\n", v, s)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New()
	for _, t := range g.tasks {
		out.MustAddTask(Task{Name: t.Name, Weight: t.Weight, Checkpoint: t.Checkpoint, Recovery: t.Recovery})
	}
	for v, ss := range g.succ {
		for _, s := range ss {
			out.MustAddEdge(v, s)
		}
	}
	return out
}
