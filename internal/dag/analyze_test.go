package dag

import (
	"testing"

	"repro/internal/rng"
)

func TestLevels(t *testing.T) {
	g := buildDiamond(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("diamond has %d levels, want 3", len(levels))
	}
	if len(levels[0]) != 1 || levels[0][0] != 0 {
		t.Errorf("level 0 = %v", levels[0])
	}
	if len(levels[1]) != 2 {
		t.Errorf("level 1 = %v", levels[1])
	}
	if len(levels[2]) != 1 || levels[2][0] != 3 {
		t.Errorf("level 2 = %v", levels[2])
	}
}

func TestLevelsChainAndIndependent(t *testing.T) {
	r := rng.New(1)
	chain, _ := Chain(5, DefaultWeights(), r)
	lv, err := chain.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(lv) != 5 {
		t.Errorf("chain has %d levels, want 5", len(lv))
	}
	ind, _ := Independent(5, DefaultWeights(), r)
	lv, err = ind.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(lv) != 1 || len(lv[0]) != 5 {
		t.Errorf("independent levels = %v", lv)
	}
}

func TestAnalyze(t *testing.T) {
	g := buildDiamond(t)
	s, err := g.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks != 4 || s.Edges != 4 || s.Depth != 3 || s.MaxWidth != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.TotalWeight != 10 || s.CriticalPathWeight != 8 {
		t.Errorf("weights = %v / %v", s.TotalWeight, s.CriticalPathWeight)
	}
	if s.SequentialFraction != 0.8 {
		t.Errorf("sequential fraction = %v", s.SequentialFraction)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestAnalyzeChainIsFullySequential(t *testing.T) {
	r := rng.New(2)
	chain, _ := Chain(7, DefaultWeights(), r)
	s, err := chain.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if s.SequentialFraction != 1 {
		t.Errorf("chain sequential fraction = %v, want 1", s.SequentialFraction)
	}
}

func TestGNP(t *testing.T) {
	r := rng.New(3)
	g, err := GNP(20, 0.3, DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 20 {
		t.Errorf("GNP size = %d", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("GNP produced invalid DAG: %v", err)
	}
	// p=0: no edges; p=1: complete DAG.
	empty, _ := GNP(5, 0, DefaultWeights(), r)
	if !empty.IsIndependent() {
		t.Error("GNP(p=0) should have no edges")
	}
	full, _ := GNP(5, 1, DefaultWeights(), r)
	if full.EdgeCount() != 10 {
		t.Errorf("GNP(p=1) edges = %d, want 10", full.EdgeCount())
	}
	if _, err := GNP(0, 0.5, DefaultWeights(), r); err == nil {
		t.Error("GNP(0) should fail")
	}
	if _, err := GNP(5, 1.5, DefaultWeights(), r); err == nil {
		t.Error("GNP(p>1) should fail")
	}
}

func TestIntreeFromChains(t *testing.T) {
	r := rng.New(4)
	g, err := IntreeFromChains(3, 2, DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3*2+1 {
		t.Errorf("intree size = %d", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("intree invalid: %v", err)
	}
	sinks := g.Sinks()
	if len(sinks) != 1 {
		t.Errorf("intree sinks = %v, want 1", sinks)
	}
	if len(g.Predecessors(sinks[0])) != 3 {
		t.Errorf("root has %d predecessors, want 3", len(g.Predecessors(sinks[0])))
	}
	if _, err := IntreeFromChains(0, 1, DefaultWeights(), r); err == nil {
		t.Error("IntreeFromChains(0) should fail")
	}
}
