package dag

import (
	"fmt"

	"repro/internal/rng"
)

// WeightSpec controls randomized task parameters for the generators.
type WeightSpec struct {
	// MinWeight and MaxWeight bound the uniform task weights.
	MinWeight, MaxWeight float64
	// MinCheckpoint and MaxCheckpoint bound the uniform checkpoint costs.
	MinCheckpoint, MaxCheckpoint float64
	// RecoveryFactor scales each task's recovery cost from its checkpoint
	// cost (R_i = RecoveryFactor · C_i); 1 matches the paper's common
	// C = R assumption.
	RecoveryFactor float64
}

// DefaultWeights returns the weight specification used by the experiment
// suite: task weights in [1, 10] hours, checkpoint costs in [0.05, 0.5]
// hours, and R_i = C_i.
func DefaultWeights() WeightSpec {
	return WeightSpec{
		MinWeight: 1, MaxWeight: 10,
		MinCheckpoint: 0.05, MaxCheckpoint: 0.5,
		RecoveryFactor: 1,
	}
}

func (ws WeightSpec) validate() error {
	if ws.MinWeight < 0 || ws.MaxWeight < ws.MinWeight {
		return fmt.Errorf("dag: invalid weight range [%v, %v]", ws.MinWeight, ws.MaxWeight)
	}
	if ws.MinCheckpoint < 0 || ws.MaxCheckpoint < ws.MinCheckpoint {
		return fmt.Errorf("dag: invalid checkpoint range [%v, %v]", ws.MinCheckpoint, ws.MaxCheckpoint)
	}
	if ws.RecoveryFactor < 0 {
		return fmt.Errorf("dag: negative recovery factor %v", ws.RecoveryFactor)
	}
	return nil
}

func (ws WeightSpec) sample(r *rng.Stream, name string) Task {
	w := ws.MinWeight
	if ws.MaxWeight > ws.MinWeight {
		w = r.Range(ws.MinWeight, ws.MaxWeight)
	}
	c := ws.MinCheckpoint
	if ws.MaxCheckpoint > ws.MinCheckpoint {
		c = r.Range(ws.MinCheckpoint, ws.MaxCheckpoint)
	}
	return Task{Name: name, Weight: w, Checkpoint: c, Recovery: ws.RecoveryFactor * c}
}

// Chain generates a linear chain T1 → … → Tn with randomized parameters —
// the application class of Proposition 3 (and of the scientific pipelines
// cited in Section 2).
func Chain(n int, ws WeightSpec, r *rng.Stream) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dag: chain length must be positive, got %d", n)
	}
	if err := ws.validate(); err != nil {
		return nil, err
	}
	g := New()
	for i := 0; i < n; i++ {
		g.MustAddTask(ws.sample(r, fmt.Sprintf("T%d", i+1)))
		if i > 0 {
			g.MustAddEdge(i-1, i)
		}
	}
	return g, nil
}

// Independent generates n tasks with no dependences — the instance class
// of the NP-completeness proof (Proposition 2).
func Independent(n int, ws WeightSpec, r *rng.Stream) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dag: task count must be positive, got %d", n)
	}
	if err := ws.validate(); err != nil {
		return nil, err
	}
	g := New()
	for i := 0; i < n; i++ {
		g.MustAddTask(ws.sample(r, fmt.Sprintf("T%d", i+1)))
	}
	return g, nil
}

// IndependentWithWeights generates independent tasks with the exact given
// weights and homogeneous costs — the shape produced by the 3-PARTITION
// reduction.
func IndependentWithWeights(weights []float64, checkpoint, recovery float64) (*Graph, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("dag: empty weight list")
	}
	g := New()
	for i, w := range weights {
		if _, err := g.AddTask(Task{
			Name: fmt.Sprintf("T%d", i+1), Weight: w,
			Checkpoint: checkpoint, Recovery: recovery,
		}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// ForkJoin generates a fork–join graph: a source task, `width` parallel
// branches of `depth` tasks each, and a sink task.
func ForkJoin(width, depth int, ws WeightSpec, r *rng.Stream) (*Graph, error) {
	if width <= 0 || depth <= 0 {
		return nil, fmt.Errorf("dag: fork-join width and depth must be positive, got %d × %d", width, depth)
	}
	if err := ws.validate(); err != nil {
		return nil, err
	}
	g := New()
	src := g.MustAddTask(ws.sample(r, "fork"))
	var lasts []int
	for b := 0; b < width; b++ {
		prev := src
		for d := 0; d < depth; d++ {
			id := g.MustAddTask(ws.sample(r, fmt.Sprintf("b%d.%d", b+1, d+1)))
			g.MustAddEdge(prev, id)
			prev = id
		}
		lasts = append(lasts, prev)
	}
	sink := g.MustAddTask(ws.sample(r, "join"))
	for _, l := range lasts {
		g.MustAddEdge(l, sink)
	}
	return g, nil
}

// Layered generates a layered random DAG: `layers` layers of `width` tasks
// each; every task in layer l+1 depends on each task of layer l
// independently with probability density (at least one predecessor is
// enforced so the layering is real).
func Layered(layers, width int, density float64, ws WeightSpec, r *rng.Stream) (*Graph, error) {
	if layers <= 0 || width <= 0 {
		return nil, fmt.Errorf("dag: layers and width must be positive, got %d × %d", layers, width)
	}
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("dag: density must be in [0, 1], got %v", density)
	}
	if err := ws.validate(); err != nil {
		return nil, err
	}
	g := New()
	prev := make([]int, 0, width)
	for l := 0; l < layers; l++ {
		cur := make([]int, 0, width)
		for k := 0; k < width; k++ {
			id := g.MustAddTask(ws.sample(r, fmt.Sprintf("L%d.%d", l+1, k+1)))
			cur = append(cur, id)
			if l > 0 {
				linked := false
				for _, p := range prev {
					if r.Float64() < density {
						g.MustAddEdge(p, id)
						linked = true
					}
				}
				if !linked {
					g.MustAddEdge(prev[r.IntN(len(prev))], id)
				}
			}
		}
		prev = cur
	}
	return g, nil
}

// EliminationFront generates the task graph of a right-looking dense
// factorization front (the LU/QR workload of Section 3's numerical-kernel
// model): step k has one panel task followed by (steps − k − 1) update
// tasks; updates of step k precede the panel of step k+1. Task weights
// shrink with the trailing matrix as in an N³-type factorization.
func EliminationFront(steps int, baseWeight, checkpointCost float64) (*Graph, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("dag: steps must be positive, got %d", steps)
	}
	if baseWeight < 0 || checkpointCost < 0 {
		return nil, fmt.Errorf("dag: negative base weight or checkpoint cost")
	}
	g := New()
	prevUpdates := []int(nil)
	for k := 0; k < steps; k++ {
		frac := float64(steps-k) / float64(steps)
		panel := g.MustAddTask(Task{
			Name:       fmt.Sprintf("panel%d", k+1),
			Weight:     baseWeight * frac * frac,
			Checkpoint: checkpointCost * frac,
			Recovery:   checkpointCost * frac,
		})
		for _, u := range prevUpdates {
			g.MustAddEdge(u, panel)
		}
		updates := make([]int, 0, steps-k-1)
		for j := k + 1; j < steps; j++ {
			u := g.MustAddTask(Task{
				Name:       fmt.Sprintf("upd%d.%d", k+1, j+1),
				Weight:     baseWeight * frac * frac / 2,
				Checkpoint: checkpointCost * frac,
				Recovery:   checkpointCost * frac,
			})
			g.MustAddEdge(panel, u)
			updates = append(updates, u)
		}
		prevUpdates = updates
	}
	return g, nil
}

// MontageLike generates a synthetic workflow shaped like the Montage
// astronomy pipeline that motivates workflow checkpointing studies: a wide
// projection stage, a pairwise-overlap stage, a fan-in fitting stage, then
// a short tail chain (background correction, co-addition, output).
func MontageLike(tiles int, ws WeightSpec, r *rng.Stream) (*Graph, error) {
	if tiles < 2 {
		return nil, fmt.Errorf("dag: montage needs at least 2 tiles, got %d", tiles)
	}
	if err := ws.validate(); err != nil {
		return nil, err
	}
	g := New()
	proj := make([]int, tiles)
	for i := range proj {
		proj[i] = g.MustAddTask(ws.sample(r, fmt.Sprintf("mProject%d", i+1)))
	}
	var diffs []int
	for i := 0; i+1 < tiles; i++ {
		d := g.MustAddTask(ws.sample(r, fmt.Sprintf("mDiff%d", i+1)))
		g.MustAddEdge(proj[i], d)
		g.MustAddEdge(proj[i+1], d)
		diffs = append(diffs, d)
	}
	fit := g.MustAddTask(ws.sample(r, "mConcatFit"))
	for _, d := range diffs {
		g.MustAddEdge(d, fit)
	}
	bg := g.MustAddTask(ws.sample(r, "mBgModel"))
	g.MustAddEdge(fit, bg)
	add := g.MustAddTask(ws.sample(r, "mAdd"))
	g.MustAddEdge(bg, add)
	out := g.MustAddTask(ws.sample(r, "mJPEG"))
	g.MustAddEdge(add, out)
	return g, nil
}
