package dag

import (
	"fmt"
	"math/bits"
)

// Lattice is the bitset machinery over a graph's downset (order-ideal)
// lattice: the partially ordered family of task sets closed under
// predecessors. Every prefix of every linearization is a downset, and —
// because the paper's segment expectation depends on a segment only
// through its task set, its last task, and the checkpointed set — the
// exact DAG scheduling DP (core.SolveDAGLattice) runs over this lattice
// instead of the factorially larger space of linearizations.
//
// Tasks are identified by their bit: task i ↔ bit i of a uint64, which
// caps the lattice machinery at 64 tasks (the exact solver's useful
// range ends far earlier — the lattice itself grows exponentially in
// the graph's width).
type Lattice struct {
	n    int
	pred []uint64 // pred[i] = direct predecessors of i as a bitmask
	succ []uint64 // succ[i] = direct successors of i as a bitmask
	topo []int    // smallest-ID-first topological order
}

// MaxLatticeTasks is the largest graph a Lattice can represent: one
// task per bit of a uint64.
const MaxLatticeTasks = 64

// Lattice builds the downset-lattice view of the graph. It fails on
// cyclic graphs and on graphs with more than MaxLatticeTasks tasks.
func (g *Graph) Lattice() (*Lattice, error) {
	n := g.Len()
	if n == 0 {
		return nil, fmt.Errorf("dag: empty graph has no lattice")
	}
	if n > MaxLatticeTasks {
		return nil, fmt.Errorf("dag: lattice supports at most %d tasks, got %d", MaxLatticeTasks, n)
	}
	topo, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	l := &Lattice{n: n, pred: make([]uint64, n), succ: make([]uint64, n), topo: topo}
	for v := 0; v < n; v++ {
		for _, s := range g.succ[v] {
			l.succ[v] |= 1 << uint(s)
			l.pred[s] |= 1 << uint(v)
		}
	}
	return l, nil
}

// Len returns the number of tasks.
func (l *Lattice) Len() int { return l.n }

// Full returns the bitmask of every task — the top of the lattice.
func (l *Lattice) Full() uint64 {
	if l.n == 64 {
		return ^uint64(0)
	}
	return 1<<uint(l.n) - 1
}

// Masks returns copies of the per-task direct predecessor and successor
// bitmasks, for callers that run their own bit-level traversals.
func (l *Lattice) Masks() (pred, succ []uint64) {
	pred = append([]uint64(nil), l.pred...)
	succ = append([]uint64(nil), l.succ...)
	return pred, succ
}

// Topo returns a copy of the smallest-ID-first topological order the
// lattice enumerations follow.
func (l *Lattice) Topo() []int { return append([]int(nil), l.topo...) }

// IsDownset reports whether s is closed under predecessors.
func (l *Lattice) IsDownset(s uint64) bool {
	for rest := s; rest != 0; rest &= rest - 1 {
		t := bits.TrailingZeros64(rest)
		if l.pred[t]&^s != 0 {
			return false
		}
	}
	return true
}

// Ready returns the tasks that can extend the downset d: tasks outside
// d whose predecessors are all inside it.
func (l *Lattice) Ready(d uint64) uint64 {
	var out uint64
	for rest := l.Full() &^ d; rest != 0; rest &= rest - 1 {
		t := bits.TrailingZeros64(rest)
		if l.pred[t]&^d == 0 {
			out |= 1 << uint(t)
		}
	}
	return out
}

// MaximalIn returns the maximal elements of the set s: tasks of s with
// no direct successor inside s. For a downset these are exactly the
// tasks that can be scheduled last among s.
func (l *Lattice) MaximalIn(s uint64) uint64 {
	var out uint64
	for rest := s; rest != 0; rest &= rest - 1 {
		t := bits.TrailingZeros64(rest)
		if l.succ[t]&s == 0 {
			out |= 1 << uint(t)
		}
	}
	return out
}

// EachDownset calls fn once for every downset of the graph, including
// the empty set and the full set, in depth-first order: each downset is
// produced from its parent by adding the single task whose topological
// index is largest. Enumeration stops early when fn returns false — the
// subtree below the current downset (every downset reached by adding
// tasks of larger topological index) is skipped, siblings continue.
//
// The enumeration is duplicate-free: a downset D is visited exactly
// once, with its tasks added in increasing topological-index order
// (every predecessor precedes its successors in that order, so the
// addition sequence is always feasible).
func (l *Lattice) EachDownset(fn func(d uint64) bool) {
	if !fn(0) {
		return
	}
	l.eachExtension(0, 0, func(d uint64, _ int) bool { return fn(d) })
}

// eachExtension enumerates every downset strictly containing base that
// is reachable by adding tasks with topological index ≥ start, calling
// fn(d, added) with the new downset and the task just added. A false
// return prunes the subtree below d (supersets of d built by this
// branch) but keeps visiting siblings.
func (l *Lattice) eachExtension(base uint64, start int, fn func(d uint64, added int) bool) {
	for idx := start; idx < l.n; idx++ {
		t := l.topo[idx]
		bit := uint64(1) << uint(t)
		if base&bit != 0 || l.pred[t]&^base != 0 {
			continue
		}
		d := base | bit
		if fn(d, t) {
			l.eachExtension(d, idx+1, fn)
		}
	}
}

// EachSegment enumerates every nonempty segment T that extends the
// downset from: sets T disjoint from `from` with from ∪ T a downset.
// fn receives the segment and the task just added; returning false
// prunes every superset of that segment reached through it (the
// depth-first subtree), while siblings are still visited. Segments are
// duplicate-free for the same reason as EachDownset.
func (l *Lattice) EachSegment(from uint64, fn func(seg uint64, added int) bool) {
	l.eachExtension(from, 0, func(d uint64, added int) bool { return fn(d&^from, added) })
}

// CountDownsets returns the number of downsets of the graph (including
// ∅ and V) — the state-space size of the exact lattice DP, against the
// n! upper bound of order enumeration.
func (l *Lattice) CountDownsets() int64 {
	var count int64
	l.EachDownset(func(uint64) bool { count++; return true })
	return count
}

// CountLinearExtensions returns the number of linearizations
// (topological orders) of the graph, computed by the standard downset
// recursion ext(D) = Σ_{t maximal in D} ext(D ∖ {t}) — O(#downsets ·
// width) instead of actually enumerating the extensions. The result is
// a float64 because realistic counts overflow int64 rapidly (24
// independent tasks already have 24! ≈ 6·10²³ orders); counts up to
// 2⁵³ are exact.
func (l *Lattice) CountLinearExtensions() float64 {
	ext := map[uint64]float64{0: 1}
	// Downsets are enumerated in DFS order, which is not sorted by
	// level; but ext(D) only needs ext of downsets with one task fewer,
	// and each D ∖ {maximal} is itself a downset that the map already
	// holds once every downset of the lower level is computed. Collect
	// per level and sweep levels upward instead.
	byLevel := make([][]uint64, l.n+1)
	l.EachDownset(func(d uint64) bool {
		lv := bits.OnesCount64(d)
		byLevel[lv] = append(byLevel[lv], d)
		return true
	})
	for lv := 1; lv <= l.n; lv++ {
		for _, d := range byLevel[lv] {
			var sum float64
			for rest := l.MaximalIn(d); rest != 0; rest &= rest - 1 {
				t := bits.TrailingZeros64(rest)
				sum += ext[d&^(1<<uint(t))]
			}
			ext[d] = sum
		}
		// Frontier retirement: level lv−1 is never read again.
		for _, d := range byLevel[lv-1] {
			delete(ext, d)
		}
	}
	return ext[l.Full()]
}
