package dag

import (
	"fmt"

	"repro/internal/rng"
)

// Levels partitions the tasks into precedence levels: level 0 holds the
// sources, and each task sits one level above its deepest predecessor.
// Level widths bound the parallelism the full-parallelism assumption
// gives up — useful when sizing the moldable extension.
func (g *Graph) Levels() ([][]int, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, g.Len())
	maxDepth := 0
	for _, v := range order {
		for _, p := range g.pred[v] {
			if depth[p]+1 > depth[v] {
				depth[v] = depth[p] + 1
			}
		}
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	levels := make([][]int, maxDepth+1)
	for v, d := range depth {
		levels[d] = append(levels[d], v)
	}
	return levels, nil
}

// Stats summarizes a workflow's shape for experiment tables.
type Stats struct {
	// Tasks and Edges count the graph elements.
	Tasks, Edges int
	// Depth is the number of precedence levels.
	Depth int
	// MaxWidth is the size of the largest level.
	MaxWidth int
	// TotalWeight is Σ w_i; CriticalPathWeight the longest path weight.
	TotalWeight, CriticalPathWeight float64
	// SequentialFraction is CriticalPathWeight / TotalWeight: 1 for a
	// chain, → 0 for wide graphs.
	SequentialFraction float64
	// MeanCheckpointCost averages C_i over tasks.
	MeanCheckpointCost float64
}

// Analyze computes Stats.
func (g *Graph) Analyze() (Stats, error) {
	levels, err := g.Levels()
	if err != nil {
		return Stats{}, err
	}
	cpw, _, err := g.CriticalPath()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Tasks:              g.Len(),
		Edges:              g.EdgeCount(),
		Depth:              len(levels),
		TotalWeight:        g.TotalWeight(),
		CriticalPathWeight: cpw,
	}
	for _, lv := range levels {
		if len(lv) > s.MaxWidth {
			s.MaxWidth = len(lv)
		}
	}
	if s.TotalWeight > 0 {
		s.SequentialFraction = cpw / s.TotalWeight
	}
	var sumC float64
	for _, t := range g.tasks {
		sumC += t.Checkpoint
	}
	if g.Len() > 0 {
		s.MeanCheckpointCost = sumC / float64(g.Len())
	}
	return s, nil
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("tasks=%d edges=%d depth=%d width=%d work=%.4g cp=%.4g seq=%.2f",
		s.Tasks, s.Edges, s.Depth, s.MaxWidth, s.TotalWeight, s.CriticalPathWeight, s.SequentialFraction)
}

// GNP generates a random DAG in the Erdős–Rényi style: tasks 0..n−1 with
// each forward edge (i, j), i < j, present independently with probability
// p. Classic random-workflow baseline for scheduling studies.
func GNP(n int, p float64, ws WeightSpec, r *rng.Stream) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dag: task count must be positive, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("dag: edge probability must be in [0, 1], got %v", p)
	}
	if err := ws.validate(); err != nil {
		return nil, err
	}
	g := New()
	for i := 0; i < n; i++ {
		g.MustAddTask(ws.sample(r, fmt.Sprintf("T%d", i+1)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.MustAddEdge(i, j)
			}
		}
	}
	return g, nil
}

// IntreeFromChains builds an in-tree: `branches` chains of length `depth`
// merging into a single root task — the reduction-tree shape of
// map-reduce style workflows.
func IntreeFromChains(branches, depth int, ws WeightSpec, r *rng.Stream) (*Graph, error) {
	if branches <= 0 || depth <= 0 {
		return nil, fmt.Errorf("dag: branches and depth must be positive, got %d × %d", branches, depth)
	}
	if err := ws.validate(); err != nil {
		return nil, err
	}
	g := New()
	var tails []int
	for b := 0; b < branches; b++ {
		prev := -1
		for d := 0; d < depth; d++ {
			id := g.MustAddTask(ws.sample(r, fmt.Sprintf("c%d.%d", b+1, d+1)))
			if prev >= 0 {
				g.MustAddEdge(prev, id)
			}
			prev = id
		}
		tails = append(tails, prev)
	}
	root := g.MustAddTask(ws.sample(r, "root"))
	for _, t := range tails {
		g.MustAddEdge(t, root)
	}
	return g, nil
}
