package dag

import (
	"encoding/json"
	"fmt"
	"io"
)

// fileFormat is the on-disk JSON representation of a workflow, consumed by
// cmd/chkptplan and cmd/chkptsim.
type fileFormat struct {
	Name  string     `json:"name,omitempty"`
	Tasks []fileTask `json:"tasks"`
	Edges [][2]int   `json:"edges,omitempty"`
}

type fileTask struct {
	Name       string  `json:"name,omitempty"`
	Weight     float64 `json:"weight"`
	Checkpoint float64 `json:"checkpoint"`
	Recovery   float64 `json:"recovery"`
}

// MarshalJSON encodes the graph in the workflow file format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	ff := fileFormat{Tasks: make([]fileTask, 0, len(g.tasks))}
	for _, t := range g.tasks {
		ff.Tasks = append(ff.Tasks, fileTask{
			Name: t.Name, Weight: t.Weight, Checkpoint: t.Checkpoint, Recovery: t.Recovery,
		})
	}
	for v, ss := range g.succ {
		for _, s := range ss {
			ff.Edges = append(ff.Edges, [2]int{v, s})
		}
	}
	return json.Marshal(ff)
}

// UnmarshalJSON decodes the workflow file format, validating structure.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var ff fileFormat
	if err := json.Unmarshal(data, &ff); err != nil {
		return fmt.Errorf("dag: decode workflow: %w", err)
	}
	fresh := New()
	for _, ft := range ff.Tasks {
		if _, err := fresh.AddTask(Task{
			Name: ft.Name, Weight: ft.Weight, Checkpoint: ft.Checkpoint, Recovery: ft.Recovery,
		}); err != nil {
			return err
		}
	}
	for _, e := range ff.Edges {
		if err := fresh.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	if err := fresh.Validate(); err != nil {
		return err
	}
	*g = *fresh
	return nil
}

// Read decodes a workflow from r.
func Read(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dag: read workflow: %w", err)
	}
	g := New()
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return g, nil
}

// Write encodes the workflow to w with indentation.
func (g *Graph) Write(w io.Writer) error {
	data, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	var buf []byte
	{
		var tmp map[string]any
		if err := json.Unmarshal(data, &tmp); err != nil {
			return err
		}
		buf, err = json.MarshalIndent(tmp, "", "  ")
		if err != nil {
			return err
		}
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
