package dag

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.MustAddTask(Task{Name: "a", Weight: 1})
	b := g.MustAddTask(Task{Name: "b", Weight: 2})
	c := g.MustAddTask(Task{Name: "c", Weight: 3})
	d := g.MustAddTask(Task{Name: "d", Weight: 4})
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(b, d)
	g.MustAddEdge(c, d)
	return g
}

func TestAddTaskValidation(t *testing.T) {
	g := New()
	if _, err := g.AddTask(Task{Weight: -1}); err == nil {
		t.Error("negative weight should be rejected")
	}
	id, err := g.AddTask(Task{Weight: 1})
	if err != nil || id != 0 {
		t.Fatalf("AddTask: id=%d err=%v", id, err)
	}
	if g.Task(0).Name != "T1" {
		t.Errorf("default name = %q, want T1", g.Task(0).Name)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	a := g.MustAddTask(Task{Weight: 1})
	b := g.MustAddTask(Task{Weight: 1})
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self-loop should be rejected")
	}
	if err := g.AddEdge(a, 5); err == nil {
		t.Error("out-of-range target should be rejected")
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b); err == nil {
		t.Error("duplicate edge should be rejected")
	}
	if g.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d", g.EdgeCount())
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := buildDiamond(t)
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for v := 0; v < g.Len(); v++ {
		for _, s := range g.Successors(v) {
			if pos[s] < pos[v] {
				t.Errorf("edge %d→%d violated in order %v", v, s, order)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	a := g.MustAddTask(Task{Weight: 1})
	b := g.MustAddTask(Task{Weight: 1})
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := g.TopologicalOrder(); err == nil {
		t.Error("cycle should be detected")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate should fail on a cycle")
	}
}

func TestIsLinearChain(t *testing.T) {
	r := rng.New(1)
	g, err := Chain(5, DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	order, ok := g.IsLinearChain()
	if !ok {
		t.Fatal("Chain() must be a linear chain")
	}
	if len(order) != 5 {
		t.Fatalf("chain order %v", order)
	}
	for i := 0; i+1 < len(order); i++ {
		found := false
		for _, s := range g.Successors(order[i]) {
			if s == order[i+1] {
				found = true
			}
		}
		if !found {
			t.Errorf("chain order broken between %d and %d", order[i], order[i+1])
		}
	}
	if _, ok := buildDiamond(t).IsLinearChain(); ok {
		t.Error("diamond must not be a chain")
	}
	ind, _ := Independent(3, DefaultWeights(), r)
	if _, ok := ind.IsLinearChain(); ok {
		t.Error("independent tasks are not a chain")
	}
	if !ind.IsIndependent() {
		t.Error("Independent() must have no edges")
	}
}

func TestAllTopologicalOrders(t *testing.T) {
	g := buildDiamond(t)
	orders := g.AllTopologicalOrders(0)
	if len(orders) != 2 { // a{bc|cb}d
		t.Fatalf("diamond has %d linearizations, want 2", len(orders))
	}
	// With a limit.
	if got := g.AllTopologicalOrders(1); len(got) != 1 {
		t.Errorf("limit ignored: %d orders", len(got))
	}
	// Independent n tasks → n! orders.
	ind, _ := Independent(4, DefaultWeights(), rng.New(2))
	if got := ind.AllTopologicalOrders(0); len(got) != 24 {
		t.Errorf("4 independent tasks have %d orders, want 24", len(got))
	}
}

func TestCriticalPath(t *testing.T) {
	g := buildDiamond(t)
	length, path, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if length != 1+3+4 {
		t.Errorf("critical path length = %v, want 8", length)
	}
	want := []int{0, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestTransitiveClosureAndReduction(t *testing.T) {
	g := buildDiamond(t)
	// Add the redundant edge a→d.
	g.MustAddEdge(0, 3)
	reach, err := g.TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	if !reach[0][3] || !reach[0][1] || reach[3][0] {
		t.Error("closure wrong")
	}
	red, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if red.EdgeCount() != 4 {
		t.Errorf("reduction kept %d edges, want 4", red.EdgeCount())
	}
	redReach, _ := red.TransitiveClosure()
	for i := range reach {
		for j := range reach[i] {
			if reach[i][j] != redReach[i][j] {
				t.Errorf("reduction changed reachability at (%d,%d)", i, j)
			}
		}
	}
}

func TestSourcesSinks(t *testing.T) {
	g := buildDiamond(t)
	if s := g.Sources(); len(s) != 1 || s[0] != 0 {
		t.Errorf("Sources = %v", s)
	}
	if s := g.Sinks(); len(s) != 1 || s[0] != 3 {
		t.Errorf("Sinks = %v", s)
	}
}

func TestSetCostsAndTotalWeight(t *testing.T) {
	g := buildDiamond(t)
	g.SetCosts(0.5, 0.25)
	for _, task := range g.Tasks() {
		if task.Checkpoint != 0.5 || task.Recovery != 0.25 {
			t.Fatalf("SetCosts not applied: %+v", task)
		}
	}
	if g.TotalWeight() != 10 {
		t.Errorf("TotalWeight = %v", g.TotalWeight())
	}
}

func TestClone(t *testing.T) {
	g := buildDiamond(t)
	c := g.Clone()
	if c.Len() != g.Len() || c.EdgeCount() != g.EdgeCount() {
		t.Fatal("clone shape differs")
	}
	c.SetCosts(9, 9)
	if g.Task(0).Checkpoint == 9 {
		t.Error("clone shares state with original")
	}
}

func TestDOT(t *testing.T) {
	g := buildDiamond(t)
	dot := g.DOT("d")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "t0 -> t1") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
}

func TestGenerators(t *testing.T) {
	r := rng.New(7)
	ws := DefaultWeights()

	fj, err := ForkJoin(3, 2, ws, r)
	if err != nil {
		t.Fatal(err)
	}
	if fj.Len() != 1+3*2+1 {
		t.Errorf("fork-join size = %d", fj.Len())
	}
	if err := fj.Validate(); err != nil {
		t.Errorf("fork-join invalid: %v", err)
	}

	lay, err := Layered(4, 3, 0.5, ws, r)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Len() != 12 {
		t.Errorf("layered size = %d", lay.Len())
	}
	if err := lay.Validate(); err != nil {
		t.Errorf("layered invalid: %v", err)
	}
	// Every non-first-layer task has at least one predecessor.
	for i := 3; i < lay.Len(); i++ {
		if len(lay.Predecessors(i)) == 0 {
			t.Errorf("layered task %d has no predecessor", i)
		}
	}

	elim, err := EliminationFront(4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := elim.Validate(); err != nil {
		t.Errorf("elimination front invalid: %v", err)
	}
	if elim.Len() != 4+3+2+1 {
		t.Errorf("elimination front size = %d, want 10", elim.Len())
	}

	mon, err := MontageLike(4, ws, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Validate(); err != nil {
		t.Errorf("montage invalid: %v", err)
	}
	if len(mon.Sinks()) != 1 {
		t.Errorf("montage should funnel into one sink, got %v", mon.Sinks())
	}
}

func TestGeneratorValidation(t *testing.T) {
	r := rng.New(8)
	ws := DefaultWeights()
	if _, err := Chain(0, ws, r); err == nil {
		t.Error("Chain(0) should fail")
	}
	if _, err := Independent(-1, ws, r); err == nil {
		t.Error("Independent(-1) should fail")
	}
	if _, err := ForkJoin(0, 1, ws, r); err == nil {
		t.Error("ForkJoin(0,1) should fail")
	}
	if _, err := Layered(1, 1, 2, ws, r); err == nil {
		t.Error("density > 1 should fail")
	}
	if _, err := MontageLike(1, ws, r); err == nil {
		t.Error("MontageLike(1) should fail")
	}
	if _, err := EliminationFront(0, 1, 1); err == nil {
		t.Error("EliminationFront(0) should fail")
	}
	bad := ws
	bad.MinWeight = -2
	if _, err := Chain(3, bad, r); err == nil {
		t.Error("negative weight spec should fail")
	}
}

func TestIndependentWithWeights(t *testing.T) {
	g, err := IndependentWithWeights([]float64{1, 2, 3}, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 || !g.IsIndependent() {
		t.Error("wrong shape")
	}
	if _, err := IndependentWithWeights(nil, 0, 0); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := IndependentWithWeights([]float64{-1}, 0, 0); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildDiamond(t)
	g.SetCosts(0.5, 0.25)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() || back.EdgeCount() != g.EdgeCount() {
		t.Fatalf("round trip changed shape: %d/%d tasks, %d/%d edges",
			back.Len(), g.Len(), back.EdgeCount(), g.EdgeCount())
	}
	for i := 0; i < g.Len(); i++ {
		a, b := g.Task(i), back.Task(i)
		if a.Weight != b.Weight || a.Checkpoint != b.Checkpoint || a.Recovery != b.Recovery || a.Name != b.Name {
			t.Errorf("task %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	// Random layered graphs survive a JSON round trip structurally
	// intact, for many shapes.
	for seed := uint64(0); seed < 12; seed++ {
		r := rng.New(seed)
		layers := 1 + r.IntN(4)
		width := 1 + r.IntN(4)
		g, err := Layered(layers, width, r.Float64(), DefaultWeights(), r)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if back.Len() != g.Len() || back.EdgeCount() != g.EdgeCount() {
			t.Fatalf("seed %d: shape changed", seed)
		}
		aStats, err := g.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		bStats, err := back.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if aStats != bStats {
			t.Errorf("seed %d: stats changed: %v vs %v", seed, aStats, bStats)
		}
	}
}

func TestJSONRejectsCycle(t *testing.T) {
	data := []byte(`{"tasks":[{"weight":1},{"weight":1}],"edges":[[0,1],[1,0]]}`)
	g := New()
	if err := g.UnmarshalJSON(data); err == nil {
		t.Error("cyclic workflow should be rejected")
	}
}

func TestJSONRejectsBadEdge(t *testing.T) {
	data := []byte(`{"tasks":[{"weight":1}],"edges":[[0,3]]}`)
	g := New()
	if err := g.UnmarshalJSON(data); err == nil {
		t.Error("out-of-range edge should be rejected")
	}
}
