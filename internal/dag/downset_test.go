package dag

import (
	"math/bits"
	"testing"

	"repro/internal/rng"
)

func latticeOf(t *testing.T, g *Graph) *Lattice {
	t.Helper()
	l, err := g.Lattice()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLatticeMasks(t *testing.T) {
	g := buildDiamond(t) // a→b, a→c, b→d, c→d
	l := latticeOf(t, g)
	pred, succ := l.Masks()
	if pred[0] != 0 || succ[0] != 0b0110 {
		t.Errorf("source masks: pred=%b succ=%b", pred[0], succ[0])
	}
	if pred[3] != 0b0110 || succ[3] != 0 {
		t.Errorf("sink masks: pred=%b succ=%b", pred[3], succ[3])
	}
	if l.Full() != 0b1111 {
		t.Errorf("Full = %b", l.Full())
	}
}

func TestLatticeDownsetPredicates(t *testing.T) {
	g := buildDiamond(t)
	l := latticeOf(t, g)
	if !l.IsDownset(0) || !l.IsDownset(0b0001) || !l.IsDownset(0b0111) || !l.IsDownset(l.Full()) {
		t.Error("valid downsets rejected")
	}
	if l.IsDownset(0b0010) || l.IsDownset(0b1000) {
		t.Error("predecessor-violating sets accepted")
	}
	if got := l.Ready(0); got != 0b0001 {
		t.Errorf("Ready(∅) = %b, want only the source", got)
	}
	if got := l.Ready(0b0001); got != 0b0110 {
		t.Errorf("Ready({a}) = %b, want {b, c}", got)
	}
	if got := l.MaximalIn(0b0111); got != 0b0110 {
		t.Errorf("MaximalIn({a,b,c}) = %b, want {b, c}", got)
	}
	if got := l.MaximalIn(l.Full()); got != 0b1000 {
		t.Errorf("MaximalIn(V) = %b, want the sink", got)
	}
}

// TestLatticeEachDownset pins duplicate-free enumeration of every
// downset on known shapes: chain n has n+1 downsets, the antichain has
// 2^n, and every visited set must actually be a downset.
func TestLatticeEachDownset(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"diamond", buildDiamond(t), 6}, // ∅ a ab ac abc abcd
	}
	if ch, err := Chain(7, DefaultWeights(), rng.New(1)); err == nil {
		cases = append(cases, struct {
			name string
			g    *Graph
			want int64
		}{"chain7", ch, 8})
	}
	if ind, err := Independent(6, DefaultWeights(), rng.New(2)); err == nil {
		cases = append(cases, struct {
			name string
			g    *Graph
			want int64
		}{"independent6", ind, 64})
	}
	for _, tc := range cases {
		l := latticeOf(t, tc.g)
		seen := map[uint64]bool{}
		l.EachDownset(func(d uint64) bool {
			if seen[d] {
				t.Errorf("%s: downset %b visited twice", tc.name, d)
			}
			seen[d] = true
			if !l.IsDownset(d) {
				t.Errorf("%s: non-downset %b visited", tc.name, d)
			}
			return true
		})
		if int64(len(seen)) != tc.want {
			t.Errorf("%s: %d downsets, want %d", tc.name, len(seen), tc.want)
		}
		if got := l.CountDownsets(); got != tc.want {
			t.Errorf("%s: CountDownsets = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestLatticeEachSegmentUnique checks segment enumeration from a
// non-empty base downset: every emitted segment extends the base to a
// downset, exactly once.
func TestLatticeEachSegmentUnique(t *testing.T) {
	g, err := GNP(9, 0.3, DefaultWeights(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	l := latticeOf(t, g)
	var bases []uint64
	l.EachDownset(func(d uint64) bool {
		if bits.OnesCount64(d) == 3 {
			bases = append(bases, d)
		}
		return true
	})
	if len(bases) == 0 {
		t.Fatal("no level-3 downsets in test graph")
	}
	for _, base := range bases {
		seen := map[uint64]bool{}
		l.EachSegment(base, func(seg uint64, added int) bool {
			if seg == 0 || seg&base != 0 {
				t.Fatalf("segment %b overlaps base %b", seg, base)
			}
			if seen[seg] {
				t.Errorf("segment %b from base %b enumerated twice", seg, base)
			}
			seen[seg] = true
			if !l.IsDownset(base | seg) {
				t.Errorf("base|seg %b is not a downset", base|seg)
			}
			if seg&(1<<uint(added)) == 0 {
				t.Errorf("added task %d not in segment %b", added, seg)
			}
			return true
		})
		// Cross-check the count: downsets above base = downsets of the
		// remaining poset; count them independently.
		var want int
		l.EachDownset(func(d uint64) bool {
			if d&base == base && d != base {
				want++
			}
			return true
		})
		if len(seen) != want {
			t.Errorf("base %b: %d segments, want %d", base, len(seen), want)
		}
	}
}

// TestLatticeEachDownsetPrune checks that returning false skips exactly
// the subtree below the current downset while siblings survive.
func TestLatticeEachDownsetPrune(t *testing.T) {
	ind, err := Independent(5, DefaultWeights(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	l := latticeOf(t, ind)
	var visited int
	l.EachDownset(func(d uint64) bool {
		visited++
		return bits.OnesCount64(d) < 2 // prune below level 2
	})
	// ∅, 5 singletons, C(5,2)=10 pairs — nothing deeper.
	if visited != 1+5+10 {
		t.Errorf("pruned enumeration visited %d downsets, want 16", visited)
	}
}

// TestCountLinearExtensions pins the lattice count against the
// streaming enumeration on shapes small enough to stream.
func TestCountLinearExtensions(t *testing.T) {
	graphs := map[string]*Graph{"diamond": buildDiamond(t)}
	if g, err := ForkJoin(3, 2, DefaultWeights(), rng.New(4)); err == nil {
		graphs["forkjoin"] = g
	}
	if g, err := IntreeFromChains(3, 2, DefaultWeights(), rng.New(5)); err == nil {
		graphs["intree"] = g
	}
	if g, err := GNP(8, 0.25, DefaultWeights(), rng.New(6)); err == nil {
		graphs["gnp"] = g
	}
	if g, err := Chain(9, DefaultWeights(), rng.New(7)); err == nil {
		graphs["chain"] = g
	}
	for name, g := range graphs {
		l := latticeOf(t, g)
		want := g.CountTopologicalOrders(0)
		if got := l.CountLinearExtensions(); got != float64(want) {
			t.Errorf("%s: CountLinearExtensions = %v, streamed count = %d", name, got, want)
		}
	}
}

func TestLatticeLimits(t *testing.T) {
	if _, err := New().Lattice(); err == nil {
		t.Error("empty graph should have no lattice")
	}
	big, err := Independent(65, DefaultWeights(), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.Lattice(); err == nil {
		t.Error("65-task graph should exceed the lattice cap")
	}
	cyc := New()
	a := cyc.MustAddTask(Task{Weight: 1})
	b := cyc.MustAddTask(Task{Weight: 1})
	cyc.MustAddEdge(a, b)
	cyc.MustAddEdge(b, a)
	if _, err := cyc.Lattice(); err == nil {
		t.Error("cyclic graph should have no lattice")
	}
}

// TestEachTopologicalOrderStreams pins the streaming enumerator against
// the materializing wrapper, the limit semantics, and early stop.
func TestEachTopologicalOrderStreams(t *testing.T) {
	g, err := ForkJoin(2, 2, DefaultWeights(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	want := g.AllTopologicalOrders(0)
	var streamed [][]int
	g.EachTopologicalOrder(0, func(order []int) bool {
		streamed = append(streamed, append([]int(nil), order...))
		return true
	})
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d orders, materialized %d", len(streamed), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if streamed[i][j] != want[i][j] {
				t.Fatalf("order %d differs: %v vs %v", i, streamed[i], want[i])
			}
		}
	}
	if got := g.CountTopologicalOrders(0); got != int64(len(want)) {
		t.Errorf("CountTopologicalOrders = %d, want %d", got, len(want))
	}
	if got := g.CountTopologicalOrders(3); got != 3 {
		t.Errorf("limited count = %d, want 3", got)
	}
	var calls int
	g.EachTopologicalOrder(0, func([]int) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Errorf("early stop after %d calls, want 2", calls)
	}
}

// TestEachTopologicalOrderAllocs is the streaming-enumerator allocation
// contract: enumerating every order of a graph with thousands of
// linearizations allocates O(n) scratch — a handful of slices — not
// O(#orders·n) as the materializing path does.
func TestEachTopologicalOrderAllocs(t *testing.T) {
	ind, err := Independent(7, DefaultWeights(), rng.New(10)) // 5040 orders
	if err != nil {
		t.Fatal(err)
	}
	var count int64
	allocs := testing.AllocsPerRun(10, func() {
		count = 0
		ind.EachTopologicalOrder(0, func([]int) bool { count++; return true })
	})
	if count != 5040 {
		t.Fatalf("enumerated %d orders, want 5040", count)
	}
	if allocs > 10 {
		t.Errorf("streaming enumeration allocated %.0f objects per full run, want ≤ 10", allocs)
	}
}
