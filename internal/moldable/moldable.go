// Package moldable implements the second extension of Section 6: tasks
// that can execute on an arbitrary number of processors. For each task,
// instantiating Equation 6 under the Section 3 workload/overhead models
// yields an expected time E(p) that first decreases with p (more
// parallelism) and eventually increases (λ = p·λ_proc grows, and for
// constant overhead the checkpoint does not shrink); choosing p means
// optimizing that trade-off.
package moldable

import (
	"fmt"
	"math"

	"repro/internal/expectation"
	"repro/internal/platform"
)

// Task is a moldable task: a total sequential load with a scalability
// model and a checkpoint footprint.
type Task struct {
	// Name labels the task.
	Name string
	// WTotal is the total sequential work.
	WTotal float64
	// BaseCheckpoint is the single-node checkpoint cost (αV in the paper).
	BaseCheckpoint float64
	// Scenario couples the workload and overhead models.
	Scenario platform.Scenario
}

// Validate checks the task parameters.
func (t Task) Validate() error {
	if t.WTotal <= 0 {
		return fmt.Errorf("moldable: task %q total work must be positive, got %v", t.Name, t.WTotal)
	}
	if t.BaseCheckpoint < 0 {
		return fmt.Errorf("moldable: task %q has negative checkpoint cost %v", t.Name, t.BaseCheckpoint)
	}
	if t.Scenario.Workload == nil || t.Scenario.Overhead == nil {
		return fmt.Errorf("moldable: task %q is missing workload or overhead model", t.Name)
	}
	return nil
}

// ExpectedTime returns E(p): the exact expected time (Proposition 1) of
// running the task to completion — work followed by one checkpoint — on p
// processors of the platform.
func (t Task) ExpectedTime(pl platform.Platform, p int) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if p <= 0 || p > pl.Processors {
		return 0, fmt.Errorf("moldable: processor count %d out of range [1, %d]", p, pl.Processors)
	}
	w, c, r, lambda := t.Scenario.Instantiate(pl, t.WTotal, t.BaseCheckpoint, p)
	m, err := expectation.NewModel(lambda, pl.Downtime)
	if err != nil {
		return 0, err
	}
	return m.ExpectedTime(w, c, r), nil
}

// Allocation is the result of optimizing one task's processor count.
type Allocation struct {
	// Processors is the optimal p.
	Processors int
	// Expected is E(p) at the optimum.
	Expected float64
	// Speedup is E(1)/E(p*), the failure-aware speedup of parallelizing.
	Speedup float64
}

// OptimalProcessors scans p ∈ [1, pl.Processors] and returns the
// allocation minimizing the expected time. The scan is exact (the
// objective need not be unimodal across scenarios); it costs one
// Proposition 1 evaluation per candidate p.
func OptimalProcessors(t Task, pl platform.Platform) (Allocation, error) {
	if err := pl.Validate(); err != nil {
		return Allocation{}, err
	}
	if err := t.Validate(); err != nil {
		return Allocation{}, err
	}
	best := Allocation{Processors: 1, Expected: math.Inf(1)}
	var e1 float64
	for p := 1; p <= pl.Processors; p++ {
		e, err := t.ExpectedTime(pl, p)
		if err != nil {
			return Allocation{}, err
		}
		if p == 1 {
			e1 = e
		}
		if e < best.Expected {
			best = Allocation{Processors: p, Expected: e}
		}
	}
	if best.Expected > 0 {
		best.Speedup = e1 / best.Expected
	}
	return best, nil
}

// SequencePlan allocates processors to a sequence of moldable tasks
// executed one after the other (the paper's full-parallelism execution
// with per-task moldability) and returns the per-task allocations and the
// total expected time.
type SequencePlan struct {
	// Allocations holds one entry per task, in order.
	Allocations []Allocation
	// TotalExpected is Σ E(p*_i).
	TotalExpected float64
}

// PlanSequence optimizes each task independently. Because tasks execute
// sequentially and each ends with a checkpoint (a renewal point),
// per-task optimization is globally optimal for the sequence — the
// resource-allocation coupling the paper warns about only appears when
// tasks may run concurrently.
func PlanSequence(tasks []Task, pl platform.Platform) (SequencePlan, error) {
	if len(tasks) == 0 {
		return SequencePlan{}, fmt.Errorf("moldable: empty task sequence")
	}
	out := SequencePlan{Allocations: make([]Allocation, 0, len(tasks))}
	for _, t := range tasks {
		a, err := OptimalProcessors(t, pl)
		if err != nil {
			return SequencePlan{}, fmt.Errorf("moldable: task %q: %w", t.Name, err)
		}
		out.Allocations = append(out.Allocations, a)
		out.TotalExpected += a.Expected
	}
	return out, nil
}
