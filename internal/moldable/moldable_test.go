package moldable

import (
	"math"
	"testing"

	"repro/internal/platform"
)

func testPlatform() platform.Platform {
	return platform.Platform{Processors: 1 << 16, LambdaProc: 1e-6, Downtime: 1}
}

func kernelTask(gamma float64) Task {
	return Task{
		Name:           "kernel",
		WTotal:         1e5,
		BaseCheckpoint: 10,
		Scenario: platform.Scenario{
			Workload: platform.NumericalKernel{Gamma: gamma},
			Overhead: platform.ConstantOverhead{},
		},
	}
}

func TestTaskValidate(t *testing.T) {
	bad := []Task{
		{WTotal: 0, Scenario: platform.Scenario{Workload: platform.PerfectlyParallel{}, Overhead: platform.ConstantOverhead{}}},
		{WTotal: 10, BaseCheckpoint: -1, Scenario: platform.Scenario{Workload: platform.PerfectlyParallel{}, Overhead: platform.ConstantOverhead{}}},
		{WTotal: 10},
	}
	for i, task := range bad {
		if err := task.Validate(); err == nil {
			t.Errorf("bad task %d accepted", i)
		}
	}
}

func TestExpectedTimeValidation(t *testing.T) {
	pl := testPlatform()
	task := kernelTask(0.1)
	if _, err := task.ExpectedTime(pl, 0); err == nil {
		t.Error("p = 0 should fail")
	}
	if _, err := task.ExpectedTime(pl, pl.Processors+1); err == nil {
		t.Error("p beyond platform should fail")
	}
	if _, err := task.ExpectedTime(pl, 64); err != nil {
		t.Errorf("valid call failed: %v", err)
	}
}

func TestOptimalProcessorsInteriorOptimum(t *testing.T) {
	// Constant checkpoint overhead + growing λ(p) ⇒ E(p) eventually
	// rises: the optimum is interior, not at p_max.
	pl := testPlatform()
	task := kernelTask(0.05)
	a, err := OptimalProcessors(task, pl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Processors <= 1 || a.Processors >= pl.Processors {
		t.Errorf("optimum p = %d should be interior (1, %d)", a.Processors, pl.Processors)
	}
	if a.Speedup <= 1 {
		t.Errorf("speedup = %v, parallelism should pay off", a.Speedup)
	}
	// Neighbor check: the returned p is a local minimum.
	for _, p := range []int{a.Processors - 1, a.Processors + 1} {
		e, err := task.ExpectedTime(pl, p)
		if err != nil {
			t.Fatal(err)
		}
		if e < a.Expected {
			t.Errorf("p=%d has E=%v < claimed optimum %v", p, e, a.Expected)
		}
	}
}

func TestOptimalProcessorsMoreFailuresFewerProcs(t *testing.T) {
	// Raising λproc must not increase the optimal processor count
	// (failures punish large platforms).
	task := kernelTask(0.05)
	pLow := platform.Platform{Processors: 1 << 14, LambdaProc: 1e-7, Downtime: 1}
	pHigh := platform.Platform{Processors: 1 << 14, LambdaProc: 1e-4, Downtime: 1}
	aLow, err := OptimalProcessors(task, pLow)
	if err != nil {
		t.Fatal(err)
	}
	aHigh, err := OptimalProcessors(task, pHigh)
	if err != nil {
		t.Fatal(err)
	}
	if aHigh.Processors > aLow.Processors {
		t.Errorf("optimal p grew with failure rate: %d → %d", aLow.Processors, aHigh.Processors)
	}
}

func TestProportionalOverheadScalesFurther(t *testing.T) {
	// With proportional overhead C(p) = C/p, checkpoints shrink with p,
	// so the optimum should sit at higher p than with constant overhead.
	pl := platform.Platform{Processors: 1 << 14, LambdaProc: 1e-5, Downtime: 1}
	constant := Task{
		Name: "c", WTotal: 1e5, BaseCheckpoint: 50,
		Scenario: platform.Scenario{Workload: platform.PerfectlyParallel{}, Overhead: platform.ConstantOverhead{}},
	}
	proportional := Task{
		Name: "p", WTotal: 1e5, BaseCheckpoint: 50,
		Scenario: platform.Scenario{Workload: platform.PerfectlyParallel{}, Overhead: platform.ProportionalOverhead{}},
	}
	ac, err := OptimalProcessors(constant, pl)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := OptimalProcessors(proportional, pl)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Processors < ac.Processors {
		t.Errorf("proportional overhead optimum %d < constant overhead optimum %d", ap.Processors, ac.Processors)
	}
}

func TestPlanSequence(t *testing.T) {
	pl := testPlatform()
	tasks := []Task{kernelTask(0.02), kernelTask(0.2)}
	plan, err := PlanSequence(tasks, pl)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Allocations) != 2 {
		t.Fatalf("allocations = %d", len(plan.Allocations))
	}
	sum := 0.0
	for _, a := range plan.Allocations {
		sum += a.Expected
	}
	if math.Abs(sum-plan.TotalExpected) > 1e-9 {
		t.Errorf("total %v ≠ sum %v", plan.TotalExpected, sum)
	}
	// Both optima are interior and the comm-heavy task runs longer.
	for i, a := range plan.Allocations {
		if a.Processors <= 1 || a.Processors >= pl.Processors {
			t.Errorf("allocation %d: p = %d not interior", i, a.Processors)
		}
	}
	if plan.Allocations[1].Expected <= plan.Allocations[0].Expected {
		t.Errorf("comm-heavy task should take longer: %v vs %v",
			plan.Allocations[1].Expected, plan.Allocations[0].Expected)
	}
	if _, err := PlanSequence(nil, pl); err == nil {
		t.Error("empty sequence should fail")
	}
}
