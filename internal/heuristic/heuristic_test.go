package heuristic

import (
	"math"
	"testing"

	"repro/internal/failure"
)

func expSurvival(lambda float64) Survival {
	return func(t float64) float64 { return math.Exp(-lambda * t) }
}

func TestFreshPlatformSurvival(t *testing.T) {
	w, _ := failure.NewWeibull(0.7, 100)
	s, err := FreshPlatformSurvival(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s(10), math.Pow(w.Survival(10), 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("S(10) = %v, want %v", got, want)
	}
	if s(0) != 1 {
		t.Errorf("S(0) = %v", s(0))
	}
	if _, err := FreshPlatformSurvival(w, 0); err == nil {
		t.Error("p = 0 should fail")
	}
}

func TestAgedPlatformSurvival(t *testing.T) {
	w, _ := failure.NewWeibull(0.7, 100)
	s, err := AgedPlatformSurvival(w, []float64{0, 50, 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s(0)-1) > 1e-12 {
		t.Errorf("S(0) = %v, want 1", s(0))
	}
	want := w.Survival(10) / w.Survival(0) *
		w.Survival(60) / w.Survival(50) *
		w.Survival(210) / w.Survival(200)
	if got := s(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("aged S(10) = %v, want %v", got, want)
	}
	// Decreasing hazard: aged processors are safer, so aged survival
	// exceeds fresh survival for shape < 1.
	fresh, _ := FreshPlatformSurvival(w, 3)
	if s(10) <= fresh(10) {
		t.Errorf("aged survival %v should exceed fresh %v for k<1", s(10), fresh(10))
	}
	if _, err := AgedPlatformSurvival(w, nil); err == nil {
		t.Error("no ages should fail")
	}
	if _, err := AgedPlatformSurvival(w, []float64{-1}); err == nil {
		t.Error("negative age should fail")
	}
}

func TestEvaluateSavedWork(t *testing.T) {
	weights := []float64{4, 6}
	costs := []float64{1, 1}
	s := expSurvival(0.1)
	// Checkpoint only at the end: saved = 10·S(11).
	got, err := EvaluateSavedWork(weights, costs, []bool{false, true}, s)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * s(11)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("end-only = %v, want %v", got, want)
	}
	// Checkpoint after both: 4·S(5) + 6·S(12).
	got, err = EvaluateSavedWork(weights, costs, []bool{true, true}, s)
	if err != nil {
		t.Fatal(err)
	}
	want = 4*s(5) + 6*s(12)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("both = %v, want %v", got, want)
	}
	if _, err := EvaluateSavedWork(weights, costs, []bool{true, false}, s); err == nil {
		t.Error("missing final checkpoint should fail")
	}
	if _, err := EvaluateSavedWork(weights, costs[:1], []bool{true, true}, s); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestMaxSavedWorkDPMatchesBruteForce(t *testing.T) {
	weights := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	const c = 0.8
	w, _ := failure.NewWeibull(0.7, 40)
	s, _ := FreshPlatformSurvival(w, 1)

	dp, err := MaxSavedWorkDP(weights, c, s)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, len(weights))
	for i := range costs {
		costs[i] = c
	}
	// Brute force over all placements.
	n := len(weights)
	best := -1.0
	ck := make([]bool, n)
	ck[n-1] = true
	for mask := 0; mask < 1<<(n-1); mask++ {
		for i := 0; i < n-1; i++ {
			ck[i] = mask&(1<<i) != 0
		}
		v, err := EvaluateSavedWork(weights, costs, ck, s)
		if err != nil {
			t.Fatal(err)
		}
		if v > best {
			best = v
		}
	}
	if math.Abs(dp.SavedWork-best) > 1e-9 {
		t.Errorf("DP %v ≠ brute force %v", dp.SavedWork, best)
	}
	// The DP's placement must evaluate to its claimed value.
	v, err := EvaluateSavedWork(weights, costs, dp.CheckpointAfter, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-dp.SavedWork) > 1e-9 {
		t.Errorf("placement evaluates to %v, DP claims %v", v, dp.SavedWork)
	}
}

func TestMaxSavedWorkDPVariableCostMatchesConstant(t *testing.T) {
	// With uniform costs the variable-cost DP (fine resolution) must
	// match the constant-cost DP.
	weights := []float64{2, 3, 5, 2, 4}
	const c = 0.5
	s := expSurvival(0.05)
	dp, err := MaxSavedWorkDP(weights, c, s)
	if err != nil {
		t.Fatal(err)
	}
	costs := []float64{c, c, c, c, c}
	vdp, err := MaxSavedWorkDPVariableCost(weights, costs, 0.5, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dp.SavedWork-vdp.SavedWork) > 1e-9 {
		t.Errorf("constant %v ≠ variable %v", dp.SavedWork, vdp.SavedWork)
	}
}

func TestMaxSavedWorkDPVariableCostHeterogeneous(t *testing.T) {
	weights := []float64{5, 5, 5, 5}
	costs := []float64{0.1, 3, 0.1, 0.2}
	s := expSurvival(0.08)
	vdp, err := MaxSavedWorkDPVariableCost(weights, costs, 0.1, s)
	if err != nil {
		t.Fatal(err)
	}
	// Claimed value must match evaluation of its own placement.
	v, err := EvaluateSavedWork(weights, costs, vdp.CheckpointAfter, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-vdp.SavedWork) > 1e-9 {
		t.Errorf("placement evaluates to %v, DP claims %v", v, vdp.SavedWork)
	}
	// Brute force comparison.
	n := len(weights)
	best := -1.0
	ck := make([]bool, n)
	ck[n-1] = true
	for mask := 0; mask < 1<<(n-1); mask++ {
		for i := 0; i < n-1; i++ {
			ck[i] = mask&(1<<i) != 0
		}
		v, _ := EvaluateSavedWork(weights, costs, ck, s)
		if v > best {
			best = v
		}
	}
	if math.Abs(vdp.SavedWork-best) > 1e-9 {
		t.Errorf("variable DP %v ≠ brute force %v", vdp.SavedWork, best)
	}
}

func TestMaxSavedWorkMoreCheckpointsWhenCheap(t *testing.T) {
	weights := make([]float64, 10)
	for i := range weights {
		weights[i] = 5
	}
	s := expSurvival(0.05)
	cheap, err := MaxSavedWorkDP(weights, 1e-6, s)
	if err != nil {
		t.Fatal(err)
	}
	dear, err := MaxSavedWorkDP(weights, 50, s)
	if err != nil {
		t.Fatal(err)
	}
	nCheap, nDear := 0, 0
	for i := range weights {
		if cheap.CheckpointAfter[i] {
			nCheap++
		}
		if dear.CheckpointAfter[i] {
			nDear++
		}
	}
	if nCheap != len(weights) {
		t.Errorf("free checkpoints: %d placed, want all", nCheap)
	}
	// Unlike the makespan objective, maximizing saved work can still
	// afford a few expensive checkpoints (each secures its prefix even
	// when it delays the rest); the invariant is monotonicity in cost.
	if nDear >= nCheap {
		t.Errorf("expensive checkpoints should reduce placements: %d vs %d", nDear, nCheap)
	}
	// And the expensive optimum must not lose to the end-only placement.
	costs := make([]float64, len(weights))
	for i := range costs {
		costs[i] = 50
	}
	endOnly := make([]bool, len(weights))
	endOnly[len(weights)-1] = true
	endVal, err := EvaluateSavedWork(weights, costs, endOnly, s)
	if err != nil {
		t.Fatal(err)
	}
	if dear.SavedWork < endVal-1e-12 {
		t.Errorf("DP %v worse than end-only %v", dear.SavedWork, endVal)
	}
}

func TestGreedyHazard(t *testing.T) {
	weights := []float64{5, 5, 5, 5}
	costs := []float64{0.5, 0.5, 0.5, 0.5}
	e, _ := failure.NewExponential(0.2)
	p, err := GreedyHazard(weights, costs, e.Hazard)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CheckpointAfter[len(weights)-1] {
		t.Error("final checkpoint missing")
	}
	// High hazard should trigger intermediate checkpoints.
	n := 0
	for _, ck := range p.CheckpointAfter {
		if ck {
			n++
		}
	}
	if n < 2 {
		t.Errorf("high-hazard greedy placed only %d checkpoints", n)
	}
	// Near-zero hazard: only the final checkpoint.
	e2, _ := failure.NewExponential(1e-9)
	p2, err := GreedyHazard(weights, costs, e2.Hazard)
	if err != nil {
		t.Fatal(err)
	}
	n2 := 0
	for _, ck := range p2.CheckpointAfter {
		if ck {
			n2++
		}
	}
	if n2 != 1 {
		t.Errorf("zero-hazard greedy placed %d checkpoints, want 1", n2)
	}
}

func TestInputValidation(t *testing.T) {
	s := expSurvival(0.1)
	if _, err := MaxSavedWorkDP(nil, 1, s); err == nil {
		t.Error("empty chain should fail")
	}
	if _, err := MaxSavedWorkDP([]float64{1}, -1, s); err == nil {
		t.Error("negative cost should fail")
	}
	if _, err := MaxSavedWorkDPVariableCost([]float64{1}, []float64{1}, 0, s); err == nil {
		t.Error("zero resolution should fail")
	}
	if _, err := MaxSavedWorkDPVariableCost([]float64{1, 2}, []float64{1}, 0.1, s); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := GreedyHazard([]float64{1}, []float64{1, 2}, func(float64) float64 { return 1 }); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := GreedyHazard(nil, nil, func(float64) float64 { return 1 }); err == nil {
		t.Error("empty chain should fail")
	}
}
