// Package heuristic implements the third extension of Section 6:
// checkpoint scheduling under general (non-memoryless) failure laws, where
// no closed-form expected makespan exists. Following the approach the
// paper credits to Bouguerra, Trystram and Wagner [20] (and to [13]), the
// heuristics maximize the expected amount of work saved before the first
// failure instead of minimizing the expected makespan.
//
// For a chain with checkpoints at positions j₁ < … < j_m (the last
// position always checkpointed), let t_k be the wall-clock completion time
// of checkpoint k and ΔW_k the work it secures; the objective is
//
//	E[saved] = Σ_k ΔW_k · S(t_k),
//
// where S is the platform survival function — the probability the platform
// has not failed by time t, conditioned on the processors' current ages.
package heuristic

import (
	"fmt"
	"math"

	"repro/internal/failure"
)

// Survival is a platform survival function: S(t) = P(no platform failure
// in the next t time units | current processor ages).
type Survival func(t float64) float64

// FreshPlatformSurvival returns the survival of p just-rejuvenated
// processors with iid inter-failure law dist: S(t)^p.
func FreshPlatformSurvival(dist failure.Survivaler, p int) (Survival, error) {
	if p <= 0 {
		return nil, fmt.Errorf("heuristic: processor count must be positive, got %d", p)
	}
	return func(t float64) float64 {
		return math.Pow(dist.Survival(t), float64(p))
	}, nil
}

// AgedPlatformSurvival returns the survival of processors with given ages
// (time since each one's last failure): Π_i S(age_i + t)/S(age_i). This is
// the quantity that makes non-memoryless scheduling history-dependent —
// the paper's second difficulty for general laws.
func AgedPlatformSurvival(dist failure.Survivaler, ages []float64) (Survival, error) {
	if len(ages) == 0 {
		return nil, fmt.Errorf("heuristic: no processor ages")
	}
	base := make([]float64, len(ages))
	for i, a := range ages {
		if a < 0 {
			return nil, fmt.Errorf("heuristic: negative age %v", a)
		}
		s := dist.Survival(a)
		if s <= 0 {
			return nil, fmt.Errorf("heuristic: processor %d has zero survival at age %v", i, a)
		}
		base[i] = s
	}
	agesCopy := append([]float64(nil), ages...)
	return func(t float64) float64 {
		prod := 1.0
		for i, a := range agesCopy {
			prod *= dist.Survival(a+t) / base[i]
		}
		return prod
	}, nil
}

// Placement is a checkpoint placement with its objective value.
type Placement struct {
	// CheckpointAfter is the checkpoint vector over chain positions.
	CheckpointAfter []bool
	// SavedWork is the expected work saved before the first failure.
	SavedWork float64
}

// EvaluateSavedWork computes E[saved] for an explicit placement: work is
// credited at each checkpoint completion time, weighted by survival.
// checkpointCosts[i] is the cost of the checkpoint after position i.
func EvaluateSavedWork(weights, checkpointCosts []float64, checkpointAfter []bool, s Survival) (float64, error) {
	n := len(weights)
	if len(checkpointCosts) != n || len(checkpointAfter) != n {
		return 0, fmt.Errorf("heuristic: inconsistent lengths (%d weights, %d costs, %d decisions)",
			n, len(checkpointCosts), len(checkpointAfter))
	}
	if n == 0 {
		return 0, fmt.Errorf("heuristic: empty chain")
	}
	if !checkpointAfter[n-1] {
		return 0, fmt.Errorf("heuristic: final position must carry a checkpoint")
	}
	var total, t, securedW, lastSecured float64
	for i := 0; i < n; i++ {
		t += weights[i]
		securedW += weights[i]
		if checkpointAfter[i] {
			t += checkpointCosts[i]
			total += (securedW - lastSecured) * s(t)
			lastSecured = securedW
		}
	}
	return total, nil
}

// MaxSavedWorkDP computes the placement maximizing E[saved] for a chain
// with a constant checkpoint cost, exactly, in O(n³): the DP state is
// (last checkpointed position, number of checkpoints used), which pins the
// wall-clock time prefW + k·C. This is the Exponential-free analogue of
// Algorithm 1 for the maximize-work objective.
func MaxSavedWorkDP(weights []float64, checkpointCost float64, s Survival) (Placement, error) {
	n := len(weights)
	if n == 0 {
		return Placement{}, fmt.Errorf("heuristic: empty chain")
	}
	if checkpointCost < 0 {
		return Placement{}, fmt.Errorf("heuristic: negative checkpoint cost %v", checkpointCost)
	}
	prefW := make([]float64, n+1)
	for i, w := range weights {
		prefW[i+1] = prefW[i] + w
	}
	// best[j][k]: max saved work over prefixes ending with the k-th
	// checkpoint at position j. 1 ≤ k ≤ j+1.
	best := make([][]float64, n)
	from := make([][]int, n)
	for j := 0; j < n; j++ {
		best[j] = make([]float64, n+1)
		from[j] = make([]int, n+1)
		for k := range best[j] {
			best[j][k] = math.Inf(-1)
			from[j][k] = -1
		}
		// k = 1: single checkpoint at j secures prefW(j+1).
		best[j][1] = prefW[j+1] * s(prefW[j+1]+checkpointCost)
	}
	for j := 1; j < n; j++ {
		for k := 2; k <= j+1; k++ {
			tj := prefW[j+1] + float64(k)*checkpointCost
			sj := s(tj)
			for i := k - 2; i < j; i++ {
				if math.IsInf(best[i][k-1], -1) {
					continue
				}
				v := best[i][k-1] + (prefW[j+1]-prefW[i+1])*sj
				if v > best[j][k] {
					best[j][k] = v
					from[j][k] = i
				}
			}
		}
	}
	// Answer: best over k at j = n−1 (final checkpoint mandatory).
	bestK, bestV := 1, best[n-1][1]
	for k := 2; k <= n; k++ {
		if best[n-1][k] > bestV {
			bestK, bestV = k, best[n-1][k]
		}
	}
	ck := make([]bool, n)
	for j, k := n-1, bestK; j >= 0 && k >= 1; {
		ck[j] = true
		prev := from[j][k]
		j, k = prev, k-1
	}
	return Placement{CheckpointAfter: ck, SavedWork: bestV}, nil
}

// MaxSavedWorkDPVariableCost handles per-position checkpoint costs with a
// pseudo-polynomial DP, echoing the weak NP-completeness (and
// pseudo-polynomial algorithm) of Bouguerra–Trystram–Wagner for variable
// costs: costs are discretized to a grid of the given resolution and the
// DP state tracks (position, total discretized checkpoint cost so far).
func MaxSavedWorkDPVariableCost(weights, checkpointCosts []float64, resolution float64, s Survival) (Placement, error) {
	n := len(weights)
	if n == 0 {
		return Placement{}, fmt.Errorf("heuristic: empty chain")
	}
	if len(checkpointCosts) != n {
		return Placement{}, fmt.Errorf("heuristic: %d costs for %d positions", len(checkpointCosts), n)
	}
	if resolution <= 0 {
		return Placement{}, fmt.Errorf("heuristic: resolution must be positive, got %v", resolution)
	}
	units := make([]int, n)
	maxUnits := 0
	for i, c := range checkpointCosts {
		if c < 0 {
			return Placement{}, fmt.Errorf("heuristic: negative checkpoint cost at %d", i)
		}
		units[i] = int(math.Round(c / resolution))
		maxUnits += units[i]
	}
	prefW := make([]float64, n+1)
	for i, w := range weights {
		prefW[i+1] = prefW[i] + w
	}
	const negInf = math.MaxFloat64
	// best[j][u]: max saved work with last checkpoint at j and total
	// discretized cost u.
	best := make([][]float64, n)
	from := make([][]int, n)
	for j := 0; j < n; j++ {
		best[j] = make([]float64, maxUnits+1)
		from[j] = make([]int, maxUnits+1)
		for u := range best[j] {
			best[j][u] = -negInf
			from[j][u] = -1
		}
		u := units[j]
		best[j][u] = prefW[j+1] * s(prefW[j+1]+float64(u)*resolution)
	}
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			for u := 0; u+units[j] <= maxUnits; u++ {
				if best[i][u] == -negInf {
					continue
				}
				nu := u + units[j]
				tj := prefW[j+1] + float64(nu)*resolution
				v := best[i][u] + (prefW[j+1]-prefW[i+1])*s(tj)
				if v > best[j][nu] {
					best[j][nu] = v
					from[j][nu] = i
				}
			}
		}
	}
	bestU, bestV := -1, -negInf
	for u, v := range best[n-1] {
		if v > bestV {
			bestU, bestV = u, v
		}
	}
	if bestU < 0 {
		return Placement{}, fmt.Errorf("heuristic: no feasible placement")
	}
	ck := make([]bool, n)
	for j, u := n-1, bestU; j >= 0; {
		ck[j] = true
		prev := from[j][u]
		u -= units[j]
		j = prev
	}
	return Placement{CheckpointAfter: ck, SavedWork: bestV}, nil
}

// GreedyHazard places a checkpoint whenever the accumulated unsecured work
// times the current platform hazard exceeds the checkpoint cost — a local
// rule that needs only the hazard rate, usable online. It is the
// "greedy" family the paper sketches for general laws.
func GreedyHazard(weights, checkpointCosts []float64, hazard func(t float64) float64) (Placement, error) {
	n := len(weights)
	if n == 0 {
		return Placement{}, fmt.Errorf("heuristic: empty chain")
	}
	if len(checkpointCosts) != n {
		return Placement{}, fmt.Errorf("heuristic: %d costs for %d positions", len(checkpointCosts), n)
	}
	ck := make([]bool, n)
	var t, unsecured float64
	for i := 0; i < n; i++ {
		t += weights[i]
		unsecured += weights[i]
		if i == n-1 {
			break
		}
		// Expected work lost to a failure in the next task ≈ unsecured ×
		// hazard × (next task's span). Checkpoint when that exceeds C.
		risk := unsecured * hazard(t) * weights[i+1]
		if risk > checkpointCosts[i] {
			ck[i] = true
			t += checkpointCosts[i]
			unsecured = 0
		}
	}
	ck[n-1] = true
	return Placement{CheckpointAfter: ck}, nil
}
