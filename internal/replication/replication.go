// Package replication models group replication, the mechanism the
// paper's related-work section points to as complementary to
// checkpoint-recovery (refs [16], [29], [30]): the platform is split into
// g groups that all execute the same segment in lockstep; the segment
// succeeds as soon as any group completes it, and only if every group
// fails before completing does the attempt restart (after downtime and
// recovery).
//
// Under Exponential failures the per-attempt success probability has a
// closed form, which yields exact attempt counts and analytic bounds on
// the expected time; the exact expectation (which depends on the partial
// overlap of group failures within an attempt) comes from simulation.
package replication

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Config describes a replicated execution.
type Config struct {
	// Groups is g ≥ 1, the number of replica groups.
	Groups int
	// LambdaGroup is each group's failure rate (for a platform of p
	// processors split evenly, λ_group = (p/g)·λ_proc).
	LambdaGroup float64
	// Downtime is D, served when an entire attempt fails.
	Downtime float64
	// Recovery is R, the rollback cost when an entire attempt fails;
	// failures can strike during recovery, as in the core model.
	Recovery float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Groups < 1 {
		return fmt.Errorf("replication: need at least one group, got %d", c.Groups)
	}
	if c.LambdaGroup <= 0 || math.IsInf(c.LambdaGroup, 0) || math.IsNaN(c.LambdaGroup) {
		return fmt.Errorf("replication: group failure rate must be positive and finite, got %v", c.LambdaGroup)
	}
	if c.Downtime < 0 || c.Recovery < 0 {
		return fmt.Errorf("replication: negative downtime (%v) or recovery (%v)", c.Downtime, c.Recovery)
	}
	return nil
}

// SuccessProbability returns the probability that one attempt at a
// segment of duration L succeeds: at least one of the g groups survives
// the whole attempt, 1 − (1 − e^{−λL})^g.
func (c Config) SuccessProbability(l float64) float64 {
	if l <= 0 {
		return 1
	}
	x := c.LambdaGroup * l
	if x > numeric.MaxExpArg {
		return 0
	}
	q := -math.Expm1(-x) // 1 − e^{−λL}, per-group failure probability
	return 1 - math.Pow(q, float64(c.Groups))
}

// ExpectedAttempts returns the expected number of attempts, 1/p_success
// (geometric), or +Inf when success is impossible at double precision.
func (c Config) ExpectedAttempts(l float64) float64 {
	p := c.SuccessProbability(l)
	if p <= 0 {
		return math.Inf(1)
	}
	return 1 / p
}

// ExpectedTimeBounds returns analytic lower and upper bounds on the
// expected time to complete work L followed by a checkpoint C with
// replication. Both count the (exact) geometric number of failed
// attempts; they differ in how much time a failed attempt wastes:
//
//	lower — a failed attempt wastes the expected maximum over g
//	        truncated-exponential group-failure times (all groups die
//	        before L+C), but at least the expectation of one truncated
//	        exponential; we use the single-group truncated mean.
//	upper — a failed attempt wastes the full L+C.
//
// Each failed attempt additionally pays D plus an expected recovery
// (failures during recovery handled as in Eq. 5 at the platform rate
// g·λ_group, since all groups recover together).
func (c Config) ExpectedTimeBounds(l, ckpt float64) (lo, hi float64, err error) {
	if err := c.Validate(); err != nil {
		return 0, 0, err
	}
	if l < 0 || ckpt < 0 {
		return 0, 0, fmt.Errorf("replication: negative work (%v) or checkpoint (%v)", l, ckpt)
	}
	dur := l + ckpt
	attempts := c.ExpectedAttempts(dur)
	if math.IsInf(attempts, 1) {
		return math.Inf(1), math.Inf(1), nil
	}
	failures := attempts - 1
	// Recovery expectation at the whole-platform rate (all groups
	// recover simultaneously; any group failure interrupts recovery).
	lambdaAll := c.LambdaGroup * float64(c.Groups)
	lrec := lambdaAll * c.Recovery
	var erec float64
	if lrec > numeric.MaxExpArg {
		return math.Inf(1), math.Inf(1), nil
	}
	erec = c.Downtime*math.Exp(lrec) + math.Expm1(lrec)/lambdaAll

	// Truncated-exponential mean of one group's failure time given it
	// fails within dur.
	x := c.LambdaGroup * dur
	var truncMean float64
	if x > 0 {
		truncMean = (1 - numeric.XOverExpm1(x)) / c.LambdaGroup
	}
	lo = dur + failures*(truncMean+erec)
	hi = dur + failures*(dur+erec)
	return lo, hi, nil
}

// SimResult summarizes simulated replicated executions.
type SimResult struct {
	// Makespan summarizes the total times.
	Makespan stats.Summary
	// Attempts summarizes attempts per run.
	Attempts stats.Summary
}

// Simulate estimates the exact expected time of work l plus checkpoint
// ckpt under the configuration by Monte-Carlo: each attempt draws one
// failure time per group; the attempt succeeds if the maximum-surviving
// group outlasts the attempt, otherwise the wasted time is the latest
// group death (work stops when the last replica dies).
func (c Config) Simulate(l, ckpt float64, runs int, seed *rng.Stream) (SimResult, error) {
	if err := c.Validate(); err != nil {
		return SimResult{}, err
	}
	if runs <= 0 {
		return SimResult{}, fmt.Errorf("replication: run count must be positive, got %d", runs)
	}
	dur := l + ckpt
	var out SimResult
	for i := 0; i < runs; i++ {
		total := 0.0
		attempts := 0
		for {
			attempts++
			// Latest group death within this attempt; success if any
			// group survives the full duration.
			survived := false
			latest := 0.0
			for gset := 0; gset < c.Groups; gset++ {
				fail := seed.ExpFloat64() / c.LambdaGroup
				if fail >= dur {
					survived = true
					continue
				}
				if fail > latest {
					latest = fail
				}
			}
			if survived {
				total += dur
				break
			}
			total += latest + c.Downtime
			// Recovery with failures possible (all groups together at
			// the platform rate).
			lambdaAll := c.LambdaGroup * float64(c.Groups)
			for {
				f := seed.ExpFloat64() / lambdaAll
				if f >= c.Recovery {
					total += c.Recovery
					break
				}
				total += f + c.Downtime
			}
			if attempts > 10_000_000 {
				return SimResult{}, fmt.Errorf("replication: no progress after %d attempts", attempts)
			}
		}
		out.Makespan.Add(total)
		out.Attempts.Add(float64(attempts))
	}
	return out, nil
}

// BreakEvenGroups scans g ∈ [1, maxGroups] for the group count minimizing
// the simulated expected time of a segment, holding the total processor
// pool fixed: with g groups, each group runs the work in parallel on p/g
// processors, so the work takes l·g/1 per-group time under perfect
// parallelism... — more precisely the caller supplies workAt(g), the
// per-attempt work duration when g groups split the pool, capturing the
// workload model. Replication trades throughput (fewer processors per
// group → longer attempts) for resilience (more independent survivors).
func BreakEvenGroups(maxGroups int, lambdaProcTotal, downtime, recovery, ckpt float64, workAt func(g int) float64, runs int, seed *rng.Stream) (int, []float64, error) {
	if maxGroups < 1 {
		return 0, nil, fmt.Errorf("replication: maxGroups must be ≥ 1, got %d", maxGroups)
	}
	times := make([]float64, 0, maxGroups)
	bestG, bestT := 1, math.Inf(1)
	for g := 1; g <= maxGroups; g++ {
		cfg := Config{
			Groups:      g,
			LambdaGroup: lambdaProcTotal / float64(g),
			Downtime:    downtime,
			Recovery:    recovery,
		}
		res, err := cfg.Simulate(workAt(g), ckpt, runs, seed.Split())
		if err != nil {
			return 0, nil, err
		}
		t := res.Makespan.Mean()
		times = append(times, t)
		if t < bestT {
			bestG, bestT = g, t
		}
	}
	return bestG, times, nil
}
