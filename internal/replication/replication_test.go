package replication

import (
	"math"
	"testing"

	"repro/internal/expectation"
	"repro/internal/rng"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{Groups: 0, LambdaGroup: 1},
		{Groups: 2, LambdaGroup: 0},
		{Groups: 2, LambdaGroup: -1},
		{Groups: 2, LambdaGroup: 1, Downtime: -1},
		{Groups: 2, LambdaGroup: 1, Recovery: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := Config{Groups: 2, LambdaGroup: 0.1, Downtime: 1, Recovery: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestSuccessProbability(t *testing.T) {
	c := Config{Groups: 3, LambdaGroup: 0.1}
	// P = 1 − (1−e^{−0.1·10})³.
	q := 1 - math.Exp(-1)
	want := 1 - q*q*q
	if got := c.SuccessProbability(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("P = %v, want %v", got, want)
	}
	if c.SuccessProbability(0) != 1 {
		t.Error("zero-length attempt must always succeed")
	}
	// More groups, higher success.
	c2 := Config{Groups: 6, LambdaGroup: 0.1}
	if c2.SuccessProbability(10) <= c.SuccessProbability(10) {
		t.Error("more groups must not lower success probability")
	}
}

func TestExpectedAttempts(t *testing.T) {
	c := Config{Groups: 1, LambdaGroup: 0.1}
	// Single group: attempts = e^{λL}.
	want := math.Exp(1)
	if got := c.ExpectedAttempts(10); math.Abs(got-want) > 1e-9 {
		t.Errorf("attempts = %v, want %v", got, want)
	}
}

func TestSingleGroupMatchesProposition1(t *testing.T) {
	// With g = 1, replication degenerates to the core model: the
	// simulated mean must match the Prop. 1 closed form.
	c := Config{Groups: 1, LambdaGroup: 0.08, Downtime: 0.5, Recovery: 1}
	m, err := expectation.NewModel(0.08, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := m.ExpectedTime(10, 1, 1)
	res, err := c.Simulate(10, 1, 120000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Makespan.Contains(want, 0.999) {
		t.Errorf("simulated %v ± %v vs Prop.1 %v",
			res.Makespan.Mean(), res.Makespan.CI(0.999), want)
	}
}

func TestBoundsBracketSimulation(t *testing.T) {
	c := Config{Groups: 3, LambdaGroup: 0.05, Downtime: 0.5, Recovery: 1}
	lo, hi, err := c.ExpectedTimeBounds(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Fatalf("bounds inverted: %v > %v", lo, hi)
	}
	res, err := c.Simulate(20, 1, 80000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	mean := res.Makespan.Mean()
	slack := 3 * res.Makespan.CI(0.999)
	if mean < lo-slack || mean > hi+slack {
		t.Errorf("simulated %v outside bounds [%v, %v]", mean, lo, hi)
	}
}

func TestReplicationReducesAttempts(t *testing.T) {
	// At fixed per-group rate, more groups → fewer expected attempts and
	// shorter makespans in failure-dominated regimes.
	base := Config{Groups: 1, LambdaGroup: 0.2, Downtime: 0.5, Recovery: 1}
	tripled := Config{Groups: 3, LambdaGroup: 0.2, Downtime: 0.5, Recovery: 1}
	r1, err := base.Simulate(15, 1, 40000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := tripled.Simulate(15, 1, 40000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Attempts.Mean() >= r1.Attempts.Mean() {
		t.Errorf("3 groups should need fewer attempts: %v vs %v", r3.Attempts.Mean(), r1.Attempts.Mean())
	}
	if r3.Makespan.Mean() >= r1.Makespan.Mean() {
		t.Errorf("3 groups should finish sooner: %v vs %v", r3.Makespan.Mean(), r1.Makespan.Mean())
	}
}

func TestSimulateValidation(t *testing.T) {
	c := Config{Groups: 1, LambdaGroup: 0.1}
	if _, err := c.Simulate(1, 0, 0, rng.New(1)); err == nil {
		t.Error("zero runs should fail")
	}
	bad := Config{Groups: 0, LambdaGroup: 0.1}
	if _, err := bad.Simulate(1, 0, 10, rng.New(1)); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestBreakEvenGroups(t *testing.T) {
	// Perfectly parallel work: splitting the pool into g groups
	// multiplies per-attempt work by g. At a high failure rate the
	// resilience of replication can still win; at a negligible rate it
	// cannot (g = 1 is optimal).
	workAt := func(g int) float64 { return 10 * float64(g) }
	bestSafe, times, err := BreakEvenGroups(4, 1e-6, 0.5, 1, 0.5, workAt, 4000, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if bestSafe != 1 {
		t.Errorf("with negligible failures best g = %d, want 1 (times %v)", bestSafe, times)
	}
	if len(times) != 4 {
		t.Fatalf("times = %v", times)
	}
	// Failure-dominated: λ_total·L = 8: a single group needs e^8 ≈ 3000
	// attempts; replication must help.
	bestRisky, timesRisky, err := BreakEvenGroups(4, 0.8, 0.5, 1, 0.5, workAt, 4000, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if bestRisky == 1 {
		t.Errorf("under heavy failures best g = 1 is implausible (times %v)", timesRisky)
	}
	if _, _, err := BreakEvenGroups(0, 0.1, 0, 0, 0, workAt, 10, rng.New(7)); err == nil {
		t.Error("maxGroups = 0 should fail")
	}
}
