package core

import (
	"container/heap"
	"fmt"

	"repro/internal/dag"
	"repro/internal/expectation"
)

// CostModel abstracts what a checkpoint and a recovery cost on a
// linearized DAG. The paper's base model (Section 2) charges the C_i/R_i
// of the task right before the checkpoint; the Section 6 extension charges
// a function of every live task — tasks executed in the segment whose
// outputs are still needed.
type CostModel interface {
	// CheckpointCost returns the cost of a checkpoint taken after
	// position end, when the current segment began at position start.
	CheckpointCost(g *dag.Graph, order []int, start, end int) float64
	// RecoveryCost returns the cost of recovering to the state
	// checkpointed after position end.
	RecoveryCost(g *dag.Graph, order []int, end int) float64
	// InitialRecovery returns R₀, the restart cost before any checkpoint.
	InitialRecovery() float64
	// Name identifies the model in experiment tables.
	Name() string
}

// LastTaskCosts is the paper's base cost model: C_j and R_j of the last
// executed task j. For linear chains it is fully general (Section 6 notes
// a single task's state ever needs saving).
type LastTaskCosts struct {
	// R0 is the initial-recovery cost.
	R0 float64
}

// CheckpointCost returns C of the task at position end.
func (lc LastTaskCosts) CheckpointCost(g *dag.Graph, order []int, _, end int) float64 {
	return g.Task(order[end]).Checkpoint
}

// CheckpointCostStartIndependent reports that CheckpointCost ignores the
// segment start, enabling the kernel fast path of SolveOrderDP.
func (lc LastTaskCosts) CheckpointCostStartIndependent() bool { return true }

// RecoveryCost returns R of the task at position end.
func (lc LastTaskCosts) RecoveryCost(g *dag.Graph, order []int, end int) float64 {
	return g.Task(order[end]).Recovery
}

// InitialRecovery returns R₀.
func (lc LastTaskCosts) InitialRecovery() float64 { return lc.R0 }

// Name implements CostModel.
func (lc LastTaskCosts) Name() string { return "last-task" }

// LiveSetCosts is the Section 6 extension model: a checkpoint after
// position end saves every task of the current segment whose output is
// still needed — i.e. tasks with a successor scheduled after end, plus
// sinks (their outputs are final results). Checkpoint cost is the sum of
// those tasks' C_i (the natural additive choice of f); recovery restores
// the full live state, summing R_i over all live tasks of the prefix.
type LiveSetCosts struct {
	// R0 is the initial-recovery cost.
	R0 float64
}

// liveAt reports whether the task at position i still has a live output
// when the prefix [0, end] has executed.
func liveAt(g *dag.Graph, order []int, executedBy []int, i, end int) bool {
	id := order[i]
	succ := g.Successors(id)
	if len(succ) == 0 {
		return true // sink: output is a final result
	}
	for _, s := range succ {
		if executedBy[s] > end {
			return true
		}
	}
	return false
}

// positionsOf returns, for each task id, its position in order.
func positionsOf(g *dag.Graph, order []int) []int {
	pos := make([]int, g.Len())
	for i, id := range order {
		pos[id] = i
	}
	return pos
}

// CheckpointCost sums C_i over the live tasks of the segment [start, end].
func (lv LiveSetCosts) CheckpointCost(g *dag.Graph, order []int, start, end int) float64 {
	pos := positionsOf(g, order)
	var sum float64
	for i := start; i <= end; i++ {
		if liveAt(g, order, pos, i, end) {
			sum += g.Task(order[i]).Checkpoint
		}
	}
	return sum
}

// RecoveryCost sums R_i over every live task of the prefix [0, end].
func (lv LiveSetCosts) RecoveryCost(g *dag.Graph, order []int, end int) float64 {
	pos := positionsOf(g, order)
	var sum float64
	for i := 0; i <= end; i++ {
		if liveAt(g, order, pos, i, end) {
			sum += g.Task(order[i]).Recovery
		}
	}
	return sum
}

// InitialRecovery returns R₀.
func (lv LiveSetCosts) InitialRecovery() float64 { return lv.R0 }

// Name implements CostModel.
func (lv LiveSetCosts) Name() string { return "live-set" }

var (
	_ CostModel = LastTaskCosts{}
	_ CostModel = LiveSetCosts{}
)

// DAGResult is a full schedule for a DAG: the chosen linearization, the
// optimal checkpoint placement for it, and the expected makespan.
type DAGResult struct {
	// Order is the linearization used.
	Order []int
	// CheckpointAfter is the optimal checkpoint vector for Order.
	CheckpointAfter []bool
	// Expected is the expected makespan.
	Expected float64
	// Strategy names the linearization heuristic that produced Order.
	Strategy string
}

// Plan converts the result into a Plan.
func (r DAGResult) Plan() Plan {
	return Plan{Order: append([]int(nil), r.Order...), CheckpointAfter: append([]bool(nil), r.CheckpointAfter...)}
}

// StartIndependentCosts is implemented by cost models whose
// CheckpointCost ignores the segment start (it depends only on the end
// position). For such models SolveOrderDP evaluates transitions through
// the segment-expectation kernel — no transcendental calls in the inner
// loop, plus exact monotone pruning.
type StartIndependentCosts interface {
	CostModel
	// CheckpointCostStartIndependent reports whether CheckpointCost(g,
	// order, start, end) is the same for every start.
	CheckpointCostStartIndependent() bool
}

// SolveOrderDP computes the optimal checkpoint placement for a fixed
// linearization of g under an arbitrary cost model: the Proposition 3
// dynamic program generalized to segment-dependent checkpoint costs. The
// recovery cost of a segment depends only on where the previous checkpoint
// sits, so optimal substructure is preserved and the DP stays exact for
// the given order.
//
// Cost is O(n²) segment evaluations in general, accelerated per model:
// start-independent models (StartIndependentCosts, e.g. LastTaskCosts)
// run on the segment-expectation kernel with exact pruning, like
// SolveChainDP; LiveSetCosts maintains live sets incrementally (O(total
// out-degree) amortized per row instead of per-pair rescans) and prunes
// with a work-only kernel bound. Either way the reported Expected is
// re-accumulated over the chosen placement with the cost model's own
// arithmetic, so accelerated and generic paths report comparable values.
func SolveOrderDP(g *dag.Graph, order []int, m expectation.Model, cm CostModel) (DAGResult, error) {
	if err := m.Validate(); err != nil {
		return DAGResult{}, err
	}
	n := len(order)
	if n == 0 {
		return DAGResult{}, fmt.Errorf("core: empty order")
	}
	if n != g.Len() {
		return DAGResult{}, fmt.Errorf("core: order covers %d of %d tasks", n, g.Len())
	}
	if lv, ok := cm.(LiveSetCosts); ok {
		return solveOrderDPLiveSet(g, order, m, lv)
	}
	if si, ok := cm.(StartIndependentCosts); ok && si.CheckpointCostStartIndependent() {
		return solveOrderDPKernel(g, order, m, cm)
	}
	return solveOrderDPGeneric(g, order, m, cm)
}

// recBeforeAt returns the recovery cost in force for a segment starting
// at position x: R₀ for x = 0, otherwise the cost model's recovery to
// the checkpoint after x−1. Single source of truth for every
// SolveOrderDP path.
func recBeforeAt(g *dag.Graph, order []int, cm CostModel, x int) float64 {
	if x == 0 {
		return cm.InitialRecovery()
	}
	return cm.RecoveryCost(g, order, x-1)
}

// orderRecBefore materializes recBeforeAt for every position.
func orderRecBefore(g *dag.Graph, order []int, cm CostModel) []float64 {
	rec := make([]float64, len(order))
	for x := range rec {
		rec[x] = recBeforeAt(g, order, cm, x)
	}
	return rec
}

// orderPrefix returns the weight prefix sums of a linearization.
func orderPrefix(g *dag.Graph, order []int) []float64 {
	prefix := make([]float64, len(order)+1)
	for i, id := range order {
		prefix[i+1] = prefix[i] + g.Task(id).Weight
	}
	return prefix
}

// solveOrderDPKernel is the fast path for start-independent checkpoint
// costs: per-position cost tables feed the segment-expectation kernel,
// and the pruned scan mirrors SolveChainDP.
func solveOrderDPKernel(g *dag.Graph, order []int, m expectation.Model, cm CostModel) (DAGResult, error) {
	n := len(order)
	weights := make([]float64, n)
	ckpt := make([]float64, n)
	for i, id := range order {
		weights[i] = g.Task(id).Weight
		ckpt[i] = cm.CheckpointCost(g, order, i, i)
	}
	rec := orderRecBefore(g, order, cm)
	kern, err := expectation.NewSegmentKernel(m, weights, ckpt, rec)
	if err != nil {
		return DAGResult{}, err
	}
	best := make([]float64, n+1)
	next := make([]int, n)
	for x := n - 1; x >= 0; x-- {
		best[x], next[x], _ = prunedRow(kern, x, best)
	}
	return orderResult(g, order, m, cm, next), nil
}

// solveOrderDPGeneric is the unaccelerated DP over an arbitrary cost
// model, paying one CheckpointCost call per transition.
func solveOrderDPGeneric(g *dag.Graph, order []int, m expectation.Model, cm CostModel) (DAGResult, error) {
	n := len(order)
	prefix := orderPrefix(g, order)
	best := make([]float64, n+1)
	next := make([]int, n)
	for x := n - 1; x >= 0; x-- {
		rec := recBeforeAt(g, order, cm, x)
		best[x] = infinity
		next[x] = n - 1
		for j := x; j < n; j++ {
			w := prefix[j+1] - prefix[x]
			ck := cm.CheckpointCost(g, order, x, j)
			cur := m.ExpectedTime(w, ck, rec) + best[j+1]
			if cur < best[x] {
				best[x] = cur
				next[x] = j
			}
		}
	}
	return orderResult(g, order, m, cm, next), nil
}

// orderResult reconstructs the checkpoint vector from a next[] table and
// re-accumulates the expectation with the cost model's own arithmetic
// (CheckpointCost/RecoveryCost per chosen segment, segment + suffix
// association), so every SolveOrderDP path reports the value the generic
// DP would.
func orderResult(g *dag.Graph, order []int, m expectation.Model, cm CostModel, next []int) DAGResult {
	n := len(order)
	prefix := orderPrefix(g, order)
	ckv := make([]bool, n)
	var starts, ends []int
	for x := 0; x < n; {
		j := next[x]
		ckv[j] = true
		starts = append(starts, x)
		ends = append(ends, j)
		x = j + 1
	}
	total := 0.0
	for i := len(starts) - 1; i >= 0; i-- {
		x, j := starts[i], ends[i]
		rec := recBeforeAt(g, order, cm, x)
		total = m.ExpectedTime(prefix[j+1]-prefix[x], cm.CheckpointCost(g, order, x, j), rec) + total
	}
	return DAGResult{Order: append([]int(nil), order...), CheckpointAfter: ckv, Expected: total}
}

// solveOrderDPLiveSet is the accelerated DP for the Section 6 live-set
// cost model. Instead of recomputing live sets from scratch for every
// (start, end) pair — which makes the generic DP effectively cubic — it
// precomputes each position's last use (the latest-scheduled successor)
// once, maintains the segment checkpoint cost incrementally while the
// inner scan extends the segment (add the new task's C, retire tasks
// whose last use is the new end), and computes all recovery costs in one
// incremental sweep. Per row the cost work is O(scan length + retired
// positions), i.e. O(total out-degree) amortized. The scan is pruned
// with a work-only kernel bound: checkpoint costs are nonnegative, so a
// zero-cost segment expectation bounds the true one from below.
func solveOrderDPLiveSet(g *dag.Graph, order []int, m expectation.Model, lv LiveSetCosts) (DAGResult, error) {
	n := len(order)
	pos := positionsOf(g, order)
	weights := make([]float64, n)
	cPos := make([]float64, n) // checkpoint cost of the task at position i
	rPos := make([]float64, n) // recovery cost of the task at position i
	for i, id := range order {
		t := g.Task(id)
		weights[i] = t.Weight
		cPos[i] = t.Checkpoint
		rPos[i] = t.Recovery
	}
	// lastUse[i]: the position after which the output of the task at
	// position i is dead — the maximum position of its successors, or n
	// for sinks (final results stay live forever).
	lastUse := make([]int, n)
	for i, id := range order {
		succ := g.Successors(id)
		if len(succ) == 0 {
			lastUse[i] = n
			continue
		}
		last := 0
		for _, s := range succ {
			if pos[s] > last {
				last = pos[s]
			}
		}
		lastUse[i] = last
	}
	// retireAt[j]: positions whose output dies once position j has run.
	retireAt := make([][]int, n)
	for i, last := range lastUse {
		if last < n {
			retireAt[last] = append(retireAt[last], i)
		}
	}
	// All recovery costs in one incremental sweep: rec(end) adds the
	// task that just ran (its output is always live at its own position)
	// and retires outputs last used at end.
	recBefore := make([]float64, n)
	recBefore[0] = lv.InitialRecovery()
	acc := 0.0
	for end := 0; end < n-1; end++ {
		acc += rPos[end]
		for _, p := range retireAt[end] {
			acc -= rPos[p]
		}
		recBefore[end+1] = acc
	}
	// Work-only kernel: zero checkpoint costs make its Segment a lower
	// bound on every live-set segment expectation, which drives pruning;
	// SegmentWithCost supplies the exact per-transition value.
	kern, err := expectation.NewSegmentKernel(m, weights, make([]float64, n), recBefore)
	if err != nil {
		return DAGResult{}, err
	}
	slack := kern.Slack()
	best := make([]float64, n+1)
	next := make([]int, n)
	for x := n - 1; x >= 0; x-- {
		bestE := infinity
		bestJ := n - 1
		ckCost := 0.0
		for j := x; j < n; j++ {
			// Extend the segment to j: the new task's output is live, and
			// outputs last used at j retire (if they joined at ≥ x).
			ckCost += cPos[j]
			for _, p := range retireAt[j] {
				if p >= x {
					ckCost -= cPos[p]
				}
			}
			cur := kern.SegmentWithCost(x, j, ckCost) + best[j+1]
			if cur < bestE {
				bestE = cur
				bestJ = j
			}
			if j+1 < n && kern.Bound(x, j+1) >= bestE*slack {
				break
			}
		}
		best[x] = bestE
		next[x] = bestJ
	}
	return orderResult(g, order, m, lv, next), nil
}

// LinearizationStrategy produces a topological order of g.
type LinearizationStrategy struct {
	// Name identifies the strategy in tables.
	Name string
	// Order computes the linearization.
	Order func(g *dag.Graph) ([]int, error)
}

// TopoOrderStrategy linearizes by the deterministic smallest-ID
// topological order.
func TopoOrderStrategy() LinearizationStrategy {
	return LinearizationStrategy{
		Name:  "topo-id",
		Order: func(g *dag.Graph) ([]int, error) { return g.TopologicalOrder() },
	}
}

// HeaviestFirstStrategy is a ready-list order that always schedules the
// heaviest ready task next: it drains expensive work early so failures hit
// before, not after, the bulk of the computation was re-executed.
func HeaviestFirstStrategy() LinearizationStrategy {
	return LinearizationStrategy{
		Name: "heaviest-first",
		Order: func(g *dag.Graph) ([]int, error) {
			return readyListOrder(g, func(a, b dag.Task) bool {
				if a.Weight != b.Weight {
					return a.Weight > b.Weight
				}
				return a.ID < b.ID
			})
		},
	}
}

// CheapCheckpointFirstStrategy schedules ready tasks with cheap
// checkpoints first, creating early low-cost checkpoint opportunities.
func CheapCheckpointFirstStrategy() LinearizationStrategy {
	return LinearizationStrategy{
		Name: "cheap-ckpt-first",
		Order: func(g *dag.Graph) ([]int, error) {
			return readyListOrder(g, func(a, b dag.Task) bool {
				if a.Checkpoint != b.Checkpoint {
					return a.Checkpoint < b.Checkpoint
				}
				return a.ID < b.ID
			})
		},
	}
}

// MinLiveSetStrategy greedily picks the ready task minimizing the number
// of live outputs after it runs — a pebbling-style heuristic that keeps
// checkpoints small under the LiveSetCosts model.
func MinLiveSetStrategy() LinearizationStrategy {
	return LinearizationStrategy{
		Name: "min-live-set",
		Order: func(g *dag.Graph) ([]int, error) {
			n := g.Len()
			indeg := make([]int, n)
			doneSucc := make([]int, n) // executed successors per task
			executed := make([]bool, n)
			for i := 0; i < n; i++ {
				indeg[i] = len(g.Predecessors(i))
			}
			live := 0
			order := make([]int, 0, n)
			for len(order) < n {
				bestID, bestDelta := -1, 0
				for v := 0; v < n; v++ {
					if executed[v] || indeg[v] != 0 {
						continue
					}
					// Running v adds one live output (unless v is a sink,
					// which also stays live) and completes some tasks'
					// last successor, retiring their outputs.
					delta := 1
					for _, p := range g.Predecessors(v) {
						if doneSucc[p] == len(g.Successors(p))-1 {
							delta--
						}
					}
					if bestID == -1 || delta < bestDelta || (delta == bestDelta && v < bestID) {
						bestID, bestDelta = v, delta
					}
				}
				if bestID == -1 {
					return nil, dag.ErrCycle
				}
				executed[bestID] = true
				order = append(order, bestID)
				live += bestDelta
				for _, p := range g.Predecessors(bestID) {
					doneSucc[p]++
				}
				for _, s := range g.Successors(bestID) {
					indeg[s]--
				}
			}
			return order, nil
		},
	}
}

// readyQueue is a min-heap of ready task IDs ordered by a strategy's
// comparison function (each strategy's less is a total order thanks to
// its ID tie-break, so the pop sequence is deterministic).
type readyQueue struct {
	g    *dag.Graph
	less func(a, b dag.Task) bool
	ids  []int
}

func (q *readyQueue) Len() int { return len(q.ids) }
func (q *readyQueue) Less(i, j int) bool {
	return q.less(q.g.Task(q.ids[i]), q.g.Task(q.ids[j]))
}
func (q *readyQueue) Swap(i, j int) { q.ids[i], q.ids[j] = q.ids[j], q.ids[i] }
func (q *readyQueue) Push(x any)    { q.ids = append(q.ids, x.(int)) }
func (q *readyQueue) Pop() any {
	last := len(q.ids) - 1
	v := q.ids[last]
	q.ids = q.ids[:last]
	return v
}

// readyListOrder linearizes g by repeatedly scheduling the least ready
// task under the strategy's order. The ready set lives in a heap, so a
// full linearization costs O((n + e)·log n) instead of the O(n²·log n) a
// per-step re-sort of the ready list would pay.
func readyListOrder(g *dag.Graph, less func(a, b dag.Task) bool) ([]int, error) {
	n := g.Len()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.Predecessors(i))
	}
	q := &readyQueue{g: g, less: less, ids: make([]int, 0, n)}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			q.ids = append(q.ids, i)
		}
	}
	heap.Init(q)
	order := make([]int, 0, n)
	for q.Len() > 0 {
		v := heap.Pop(q).(int)
		order = append(order, v)
		for _, s := range g.Successors(v) {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(q, s)
			}
		}
	}
	if len(order) != n {
		return nil, dag.ErrCycle
	}
	return order, nil
}

// DefaultStrategies returns the linearization heuristics SolveDAG tries.
func DefaultStrategies() []LinearizationStrategy {
	return []LinearizationStrategy{
		TopoOrderStrategy(),
		HeaviestFirstStrategy(),
		CheapCheckpointFirstStrategy(),
		MinLiveSetStrategy(),
	}
}

// SolveDAG schedules a general DAG heuristically: it tries every supplied
// linearization strategy (DefaultStrategies when strategies is nil), runs
// the exact per-order DP on each, and returns the best schedule found.
// Proposition 2 says finding the globally optimal order is strongly
// NP-hard, so a portfolio of orders with exact placement per order is the
// principled heuristic.
func SolveDAG(g *dag.Graph, m expectation.Model, cm CostModel, strategies []LinearizationStrategy) (DAGResult, error) {
	if g.Len() == 0 {
		return DAGResult{}, fmt.Errorf("core: empty graph")
	}
	if err := g.Validate(); err != nil {
		return DAGResult{}, err
	}
	if strategies == nil {
		strategies = DefaultStrategies()
	}
	best := DAGResult{Expected: infinity}
	for _, s := range strategies {
		order, err := s.Order(g)
		if err != nil {
			return DAGResult{}, fmt.Errorf("core: strategy %s: %w", s.Name, err)
		}
		res, err := SolveOrderDP(g, order, m, cm)
		if err != nil {
			return DAGResult{}, fmt.Errorf("core: strategy %s: %w", s.Name, err)
		}
		res.Strategy = s.Name
		if res.Expected < best.Expected {
			best = res
		}
	}
	return best, nil
}

// SolveDAGExhaustive enumerates every linearization (up to limit; 0 means
// all) with the exact per-order DP and returns the global optimum over
// enumerated orders. Exponential; used to validate SolveDAG on small
// graphs.
func SolveDAGExhaustive(g *dag.Graph, m expectation.Model, cm CostModel, limit int) (DAGResult, error) {
	if g.Len() == 0 {
		return DAGResult{}, fmt.Errorf("core: empty graph")
	}
	orders := g.AllTopologicalOrders(limit)
	if len(orders) == 0 {
		return DAGResult{}, dag.ErrCycle
	}
	best := DAGResult{Expected: infinity}
	for _, order := range orders {
		res, err := SolveOrderDP(g, order, m, cm)
		if err != nil {
			return DAGResult{}, err
		}
		res.Strategy = "exhaustive"
		if res.Expected < best.Expected {
			best = res
		}
	}
	return best, nil
}
