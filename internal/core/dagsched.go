package core

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/expectation"
)

// CostModel abstracts what a checkpoint and a recovery cost on a
// linearized DAG. The paper's base model (Section 2) charges the C_i/R_i
// of the task right before the checkpoint; the Section 6 extension charges
// a function of every live task — tasks executed in the segment whose
// outputs are still needed.
type CostModel interface {
	// CheckpointCost returns the cost of a checkpoint taken after
	// position end, when the current segment began at position start.
	CheckpointCost(g *dag.Graph, order []int, start, end int) float64
	// RecoveryCost returns the cost of recovering to the state
	// checkpointed after position end.
	RecoveryCost(g *dag.Graph, order []int, end int) float64
	// InitialRecovery returns R₀, the restart cost before any checkpoint.
	InitialRecovery() float64
	// Name identifies the model in experiment tables.
	Name() string
}

// LastTaskCosts is the paper's base cost model: C_j and R_j of the last
// executed task j. For linear chains it is fully general (Section 6 notes
// a single task's state ever needs saving).
type LastTaskCosts struct {
	// R0 is the initial-recovery cost.
	R0 float64
}

// CheckpointCost returns C of the task at position end.
func (lc LastTaskCosts) CheckpointCost(g *dag.Graph, order []int, _, end int) float64 {
	return g.Task(order[end]).Checkpoint
}

// CheckpointCostStartIndependent reports that CheckpointCost ignores the
// segment start, enabling the kernel fast path of SolveOrderDP.
func (lc LastTaskCosts) CheckpointCostStartIndependent() bool { return true }

// RecoveryCost returns R of the task at position end.
func (lc LastTaskCosts) RecoveryCost(g *dag.Graph, order []int, end int) float64 {
	return g.Task(order[end]).Recovery
}

// InitialRecovery returns R₀.
func (lc LastTaskCosts) InitialRecovery() float64 { return lc.R0 }

// Name implements CostModel.
func (lc LastTaskCosts) Name() string { return "last-task" }

// LiveSetCosts is the Section 6 extension model: a checkpoint after
// position end saves every task of the current segment whose output is
// still needed — i.e. tasks with a successor scheduled after end, plus
// sinks (their outputs are final results). Checkpoint cost is the sum of
// those tasks' C_i (the natural additive choice of f); recovery restores
// the full live state, summing R_i over all live tasks of the prefix.
type LiveSetCosts struct {
	// R0 is the initial-recovery cost.
	R0 float64
}

// liveAt reports whether the task at position i still has a live output
// when the prefix [0, end] has executed.
func liveAt(g *dag.Graph, order []int, executedBy []int, i, end int) bool {
	id := order[i]
	succ := g.Successors(id)
	if len(succ) == 0 {
		return true // sink: output is a final result
	}
	for _, s := range succ {
		if executedBy[s] > end {
			return true
		}
	}
	return false
}

// positionsOf returns, for each task id, its position in order.
func positionsOf(g *dag.Graph, order []int) []int {
	pos := make([]int, g.Len())
	for i, id := range order {
		pos[id] = i
	}
	return pos
}

// CheckpointCost sums C_i over the live tasks of the segment [start, end].
func (lv LiveSetCosts) CheckpointCost(g *dag.Graph, order []int, start, end int) float64 {
	pos := positionsOf(g, order)
	var sum float64
	for i := start; i <= end; i++ {
		if liveAt(g, order, pos, i, end) {
			sum += g.Task(order[i]).Checkpoint
		}
	}
	return sum
}

// RecoveryCost sums R_i over every live task of the prefix [0, end].
func (lv LiveSetCosts) RecoveryCost(g *dag.Graph, order []int, end int) float64 {
	pos := positionsOf(g, order)
	var sum float64
	for i := 0; i <= end; i++ {
		if liveAt(g, order, pos, i, end) {
			sum += g.Task(order[i]).Recovery
		}
	}
	return sum
}

// InitialRecovery returns R₀.
func (lv LiveSetCosts) InitialRecovery() float64 { return lv.R0 }

// Name implements CostModel.
func (lv LiveSetCosts) Name() string { return "live-set" }

var (
	_ CostModel = LastTaskCosts{}
	_ CostModel = LiveSetCosts{}
)

// DAGResult is a full schedule for a DAG: the chosen linearization, the
// optimal checkpoint placement for it, and the expected makespan.
type DAGResult struct {
	// Order is the linearization used.
	Order []int
	// CheckpointAfter is the optimal checkpoint vector for Order.
	CheckpointAfter []bool
	// Expected is the expected makespan.
	Expected float64
	// Strategy names the linearization heuristic that produced Order.
	Strategy string
}

// Plan converts the result into a Plan.
func (r DAGResult) Plan() Plan {
	return Plan{Order: append([]int(nil), r.Order...), CheckpointAfter: append([]bool(nil), r.CheckpointAfter...)}
}

// StartIndependentCosts is implemented by cost models whose
// CheckpointCost ignores the segment start (it depends only on the end
// position). For such models SolveOrderDP evaluates transitions through
// the segment-expectation kernel — no transcendental calls in the inner
// loop, plus exact monotone pruning.
type StartIndependentCosts interface {
	CostModel
	// CheckpointCostStartIndependent reports whether CheckpointCost(g,
	// order, start, end) is the same for every start.
	CheckpointCostStartIndependent() bool
}

// SolveOrderDP computes the optimal checkpoint placement for a fixed
// linearization of g under an arbitrary cost model: the Proposition 3
// dynamic program generalized to segment-dependent checkpoint costs. The
// recovery cost of a segment depends only on where the previous checkpoint
// sits, so optimal substructure is preserved and the DP stays exact for
// the given order.
//
// Cost is O(n²) segment evaluations in general, accelerated per model:
// start-independent models (StartIndependentCosts, e.g. LastTaskCosts)
// run on the segment-expectation kernel with exact pruning, like
// SolveChainDP; LiveSetCosts maintains live sets incrementally (O(total
// out-degree) amortized per row instead of per-pair rescans) and prunes
// with a work-only kernel bound. Either way the reported Expected is
// re-accumulated over the chosen placement with the cost model's own
// arithmetic, so accelerated and generic paths report comparable values.
func SolveOrderDP(g *dag.Graph, order []int, m expectation.Model, cm CostModel) (DAGResult, error) {
	return solveOrderDPWith(g, order, m, cm, &orderScratch{})
}

// orderScratch holds the reusable buffers of the per-order DPs. The
// portfolio and exhaustive solvers run many per-order DPs back to back
// and keep one scratch per worker, so each order costs zero table
// allocations after the first; SolveOrderDP hands a fresh scratch per
// call. Results are identical either way (expectation.SegmentKernel's
// Reinit contract).
type orderScratch struct {
	weights, ckpt, rec, best []float64
	next                     []int
	kern                     *expectation.SegmentKernel
	// live-set path extras
	pos, lastUse []int
	cPos, rPos   []float64
	retireAt     [][]int
}

// grow returns s resized to n, reusing capacity when possible; grown
// elements may hold stale content, which callers must overwrite.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// reinitKernel rebuilds the scratch's kernel for the given tables.
func (sc *orderScratch) reinitKernel(m expectation.Model, weights, ckpt, rec []float64) (*expectation.SegmentKernel, error) {
	if sc.kern == nil {
		sc.kern = &expectation.SegmentKernel{}
	}
	if err := sc.kern.Reinit(m, weights, ckpt, rec); err != nil {
		return nil, err
	}
	return sc.kern, nil
}

// solveOrderDPWith is SolveOrderDP over caller-owned scratch buffers.
func solveOrderDPWith(g *dag.Graph, order []int, m expectation.Model, cm CostModel, sc *orderScratch) (DAGResult, error) {
	if err := m.Validate(); err != nil {
		return DAGResult{}, err
	}
	n := len(order)
	if n == 0 {
		return DAGResult{}, fmt.Errorf("core: empty order")
	}
	if n != g.Len() {
		return DAGResult{}, fmt.Errorf("core: order covers %d of %d tasks", n, g.Len())
	}
	if lv, ok := cm.(LiveSetCosts); ok {
		return solveOrderDPLiveSet(g, order, m, lv, sc)
	}
	if si, ok := cm.(StartIndependentCosts); ok && si.CheckpointCostStartIndependent() {
		return solveOrderDPKernel(g, order, m, cm, sc)
	}
	return solveOrderDPGeneric(g, order, m, cm)
}

// recBeforeAt returns the recovery cost in force for a segment starting
// at position x: R₀ for x = 0, otherwise the cost model's recovery to
// the checkpoint after x−1. Single source of truth for every
// SolveOrderDP path.
func recBeforeAt(g *dag.Graph, order []int, cm CostModel, x int) float64 {
	if x == 0 {
		return cm.InitialRecovery()
	}
	return cm.RecoveryCost(g, order, x-1)
}

// orderPrefix returns the weight prefix sums of a linearization.
func orderPrefix(g *dag.Graph, order []int) []float64 {
	prefix := make([]float64, len(order)+1)
	for i, id := range order {
		prefix[i+1] = prefix[i] + g.Task(id).Weight
	}
	return prefix
}

// solveOrderDPKernel is the fast path for start-independent checkpoint
// costs: per-position cost tables feed the segment-expectation kernel,
// and the pruned scan mirrors SolveChainDP.
func solveOrderDPKernel(g *dag.Graph, order []int, m expectation.Model, cm CostModel, sc *orderScratch) (DAGResult, error) {
	n := len(order)
	sc.weights = grow(sc.weights, n)
	sc.ckpt = grow(sc.ckpt, n)
	sc.rec = grow(sc.rec, n)
	for i, id := range order {
		sc.weights[i] = g.Task(id).Weight
		sc.ckpt[i] = cm.CheckpointCost(g, order, i, i)
		sc.rec[i] = recBeforeAt(g, order, cm, i)
	}
	kern, err := sc.reinitKernel(m, sc.weights, sc.ckpt, sc.rec)
	if err != nil {
		return DAGResult{}, err
	}
	best := grow(sc.best, n+1)
	sc.best = best
	next := grow(sc.next, n)
	sc.next = next
	best[n] = 0 // reused buffers may hold a previous order's row
	for x := n - 1; x >= 0; x-- {
		best[x], next[x], _ = prunedRow(kern, x, best)
	}
	return orderResult(g, order, m, cm, next), nil
}

// solveOrderDPGeneric is the unaccelerated DP over an arbitrary cost
// model, paying one CheckpointCost call per transition.
func solveOrderDPGeneric(g *dag.Graph, order []int, m expectation.Model, cm CostModel) (DAGResult, error) {
	n := len(order)
	prefix := orderPrefix(g, order)
	best := make([]float64, n+1)
	next := make([]int, n)
	for x := n - 1; x >= 0; x-- {
		rec := recBeforeAt(g, order, cm, x)
		best[x] = infinity
		next[x] = n - 1
		for j := x; j < n; j++ {
			w := prefix[j+1] - prefix[x]
			ck := cm.CheckpointCost(g, order, x, j)
			cur := m.ExpectedTime(w, ck, rec) + best[j+1]
			if cur < best[x] {
				best[x] = cur
				next[x] = j
			}
		}
	}
	return orderResult(g, order, m, cm, next), nil
}

// orderResult reconstructs the checkpoint vector from a next[] table and
// re-accumulates the expectation with the cost model's own arithmetic
// (CheckpointCost/RecoveryCost per chosen segment, segment + suffix
// association), so every SolveOrderDP path reports the value the generic
// DP would.
func orderResult(g *dag.Graph, order []int, m expectation.Model, cm CostModel, next []int) DAGResult {
	n := len(order)
	prefix := orderPrefix(g, order)
	ckv := make([]bool, n)
	var starts, ends []int
	for x := 0; x < n; {
		j := next[x]
		ckv[j] = true
		starts = append(starts, x)
		ends = append(ends, j)
		x = j + 1
	}
	total := 0.0
	for i := len(starts) - 1; i >= 0; i-- {
		x, j := starts[i], ends[i]
		rec := recBeforeAt(g, order, cm, x)
		total = m.ExpectedTime(prefix[j+1]-prefix[x], cm.CheckpointCost(g, order, x, j), rec) + total
	}
	return DAGResult{Order: append([]int(nil), order...), CheckpointAfter: ckv, Expected: total}
}

// solveOrderDPLiveSet is the accelerated DP for the Section 6 live-set
// cost model. Instead of recomputing live sets from scratch for every
// (start, end) pair — which makes the generic DP effectively cubic — it
// precomputes each position's last use (the latest-scheduled successor)
// once, maintains the segment checkpoint cost incrementally while the
// inner scan extends the segment (add the new task's C, retire tasks
// whose last use is the new end), and computes all recovery costs in one
// incremental sweep. Per row the cost work is O(scan length + retired
// positions), i.e. O(total out-degree) amortized. The scan is pruned
// with a work-only kernel bound: checkpoint costs are nonnegative, so a
// zero-cost segment expectation bounds the true one from below.
func solveOrderDPLiveSet(g *dag.Graph, order []int, m expectation.Model, lv LiveSetCosts, sc *orderScratch) (DAGResult, error) {
	n := len(order)
	sc.pos = grow(sc.pos, g.Len())
	pos := sc.pos
	for i, id := range order {
		pos[id] = i
	}
	sc.weights = grow(sc.weights, n)
	sc.cPos = grow(sc.cPos, n)
	sc.rPos = grow(sc.rPos, n)
	weights, cPos, rPos := sc.weights, sc.cPos, sc.rPos
	for i, id := range order {
		t := g.Task(id)
		weights[i] = t.Weight
		cPos[i] = t.Checkpoint
		rPos[i] = t.Recovery
	}
	// lastUse[i]: the position after which the output of the task at
	// position i is dead — the maximum position of its successors, or n
	// for sinks (final results stay live forever).
	sc.lastUse = grow(sc.lastUse, n)
	lastUse := sc.lastUse
	for i, id := range order {
		succ := g.Successors(id)
		if len(succ) == 0 {
			lastUse[i] = n
			continue
		}
		last := 0
		for _, s := range succ {
			if pos[s] > last {
				last = pos[s]
			}
		}
		lastUse[i] = last
	}
	// retireAt[j]: positions whose output dies once position j has run.
	if cap(sc.retireAt) >= n {
		sc.retireAt = sc.retireAt[:n]
		for i := range sc.retireAt {
			sc.retireAt[i] = sc.retireAt[i][:0]
		}
	} else {
		sc.retireAt = make([][]int, n)
	}
	retireAt := sc.retireAt
	for i, last := range lastUse {
		if last < n {
			retireAt[last] = append(retireAt[last], i)
		}
	}
	// All recovery costs in one incremental sweep: rec(end) adds the
	// task that just ran (its output is always live at its own position)
	// and retires outputs last used at end.
	sc.rec = grow(sc.rec, n)
	recBefore := sc.rec
	recBefore[0] = lv.InitialRecovery()
	acc := 0.0
	for end := 0; end < n-1; end++ {
		acc += rPos[end]
		for _, p := range retireAt[end] {
			acc -= rPos[p]
		}
		recBefore[end+1] = acc
	}
	// Work-only kernel: zero checkpoint costs make its Segment a lower
	// bound on every live-set segment expectation, which drives pruning;
	// SegmentWithCost supplies the exact per-transition value.
	sc.ckpt = grow(sc.ckpt, n)
	for i := range sc.ckpt {
		sc.ckpt[i] = 0
	}
	kern, err := sc.reinitKernel(m, weights, sc.ckpt, recBefore)
	if err != nil {
		return DAGResult{}, err
	}
	slack := kern.Slack()
	sc.best = grow(sc.best, n+1)
	sc.next = grow(sc.next, n)
	best, next := sc.best, sc.next
	best[n] = 0 // reused buffers may hold a previous order's row
	for x := n - 1; x >= 0; x-- {
		bestE := infinity
		bestJ := n - 1
		ckCost := 0.0
		for j := x; j < n; j++ {
			// Extend the segment to j: the new task's output is live, and
			// outputs last used at j retire (if they joined at ≥ x).
			ckCost += cPos[j]
			for _, p := range retireAt[j] {
				if p >= x {
					ckCost -= cPos[p]
				}
			}
			cur := kern.SegmentWithCost(x, j, ckCost) + best[j+1]
			if cur < bestE {
				bestE = cur
				bestJ = j
			}
			if j+1 < n && kern.Bound(x, j+1) >= bestE*slack {
				break
			}
		}
		best[x] = bestE
		next[x] = bestJ
	}
	return orderResult(g, order, m, lv, next), nil
}

// LinearizationStrategy produces a topological order of g.
type LinearizationStrategy struct {
	// Name identifies the strategy in tables.
	Name string
	// Order computes the linearization.
	Order func(g *dag.Graph) ([]int, error)
}

// TopoOrderStrategy linearizes by the deterministic smallest-ID
// topological order.
func TopoOrderStrategy() LinearizationStrategy {
	return LinearizationStrategy{
		Name:  "topo-id",
		Order: func(g *dag.Graph) ([]int, error) { return g.TopologicalOrder() },
	}
}

// HeaviestFirstStrategy is a ready-list order that always schedules the
// heaviest ready task next: it drains expensive work early so failures hit
// before, not after, the bulk of the computation was re-executed.
func HeaviestFirstStrategy() LinearizationStrategy {
	return LinearizationStrategy{
		Name: "heaviest-first",
		Order: func(g *dag.Graph) ([]int, error) {
			return readyListOrder(g, func(a, b dag.Task) bool {
				if a.Weight != b.Weight {
					return a.Weight > b.Weight
				}
				return a.ID < b.ID
			})
		},
	}
}

// CheapCheckpointFirstStrategy schedules ready tasks with cheap
// checkpoints first, creating early low-cost checkpoint opportunities.
func CheapCheckpointFirstStrategy() LinearizationStrategy {
	return LinearizationStrategy{
		Name: "cheap-ckpt-first",
		Order: func(g *dag.Graph) ([]int, error) {
			return readyListOrder(g, func(a, b dag.Task) bool {
				if a.Checkpoint != b.Checkpoint {
					return a.Checkpoint < b.Checkpoint
				}
				return a.ID < b.ID
			})
		},
	}
}

// MinLiveSetStrategy greedily picks the ready task minimizing the number
// of live outputs after it runs — a pebbling-style heuristic that keeps
// checkpoints small under the LiveSetCosts model.
func MinLiveSetStrategy() LinearizationStrategy {
	return LinearizationStrategy{
		Name: "min-live-set",
		Order: func(g *dag.Graph) ([]int, error) {
			n := g.Len()
			indeg := make([]int, n)
			doneSucc := make([]int, n) // executed successors per task
			executed := make([]bool, n)
			for i := 0; i < n; i++ {
				indeg[i] = len(g.Predecessors(i))
			}
			live := 0
			order := make([]int, 0, n)
			for len(order) < n {
				bestID, bestDelta := -1, 0
				for v := 0; v < n; v++ {
					if executed[v] || indeg[v] != 0 {
						continue
					}
					// Running v adds one live output (unless v is a sink,
					// which also stays live) and completes some tasks'
					// last successor, retiring their outputs.
					delta := 1
					for _, p := range g.Predecessors(v) {
						if doneSucc[p] == len(g.Successors(p))-1 {
							delta--
						}
					}
					if bestID == -1 || delta < bestDelta || (delta == bestDelta && v < bestID) {
						bestID, bestDelta = v, delta
					}
				}
				if bestID == -1 {
					return nil, dag.ErrCycle
				}
				executed[bestID] = true
				order = append(order, bestID)
				live += bestDelta
				for _, p := range g.Predecessors(bestID) {
					doneSucc[p]++
				}
				for _, s := range g.Successors(bestID) {
					indeg[s]--
				}
			}
			return order, nil
		},
	}
}

// readyQueue is a min-heap of ready task IDs ordered by a strategy's
// comparison function (each strategy's less is a total order thanks to
// its ID tie-break, so the pop sequence is deterministic).
type readyQueue struct {
	g    *dag.Graph
	less func(a, b dag.Task) bool
	ids  []int
}

func (q *readyQueue) Len() int { return len(q.ids) }
func (q *readyQueue) Less(i, j int) bool {
	return q.less(q.g.Task(q.ids[i]), q.g.Task(q.ids[j]))
}
func (q *readyQueue) Swap(i, j int) { q.ids[i], q.ids[j] = q.ids[j], q.ids[i] }
func (q *readyQueue) Push(x any)    { q.ids = append(q.ids, x.(int)) }
func (q *readyQueue) Pop() any {
	last := len(q.ids) - 1
	v := q.ids[last]
	q.ids = q.ids[:last]
	return v
}

// readyListOrder linearizes g by repeatedly scheduling the least ready
// task under the strategy's order. The ready set lives in a heap, so a
// full linearization costs O((n + e)·log n) instead of the O(n²·log n) a
// per-step re-sort of the ready list would pay.
func readyListOrder(g *dag.Graph, less func(a, b dag.Task) bool) ([]int, error) {
	n := g.Len()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.Predecessors(i))
	}
	q := &readyQueue{g: g, less: less, ids: make([]int, 0, n)}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			q.ids = append(q.ids, i)
		}
	}
	heap.Init(q)
	order := make([]int, 0, n)
	for q.Len() > 0 {
		v := heap.Pop(q).(int)
		order = append(order, v)
		for _, s := range g.Successors(v) {
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(q, s)
			}
		}
	}
	if len(order) != n {
		return nil, dag.ErrCycle
	}
	return order, nil
}

// DefaultStrategies returns the linearization heuristics SolveDAG tries.
func DefaultStrategies() []LinearizationStrategy {
	return []LinearizationStrategy{
		TopoOrderStrategy(),
		HeaviestFirstStrategy(),
		CheapCheckpointFirstStrategy(),
		MinLiveSetStrategy(),
	}
}

// Options tunes the DAG solvers.
type Options struct {
	// Workers bounds the solver parallelism: linearization strategies
	// solved concurrently by the portfolio, lattice states expanded
	// concurrently per level. ≤ 0 means runtime.GOMAXPROCS(0). Results
	// are identical for every worker count.
	Workers int
	// Strategies is the linearization portfolio (nil means
	// DefaultStrategies) — the heuristic arms of SolveDAGWith and the
	// branch-and-bound incumbent of SolveDAGLattice.
	Strategies []LinearizationStrategy
	// MaxStates caps the number of DP states SolveDAGLattice may store
	// (0 means unlimited); exceeding it aborts with an error instead of
	// exhausting memory. The cap is enforced exactly between lattice
	// levels and approximately (per-worker candidate insertions, an
	// overestimate of distinct states) during a level's expansion, so a
	// run near the cap may abort slightly early rather than overshoot.
	MaxStates int64
	// NoIncumbent skips seeding the lattice branch-and-bound with the
	// portfolio incumbent, forcing the full unpruned state space (used
	// by tests and by benchmarks of the bare DP).
	NoIncumbent bool
	// IncumbentUB, when positive, seeds the lattice branch-and-bound
	// with a caller-supplied upper bound instead of running the
	// portfolio internally (callers that already solved the portfolio
	// avoid solving it twice). It MUST be the expected makespan of a
	// valid schedule of the same instance — an underestimate below the
	// true optimum would unsoundly prune it. Takes precedence over
	// NoIncumbent; ignored by SolveDAGWith.
	IncumbentUB float64
}

// workerCount resolves the configured parallelism.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runWorkers executes fn(worker, i) for i ∈ [0, n) on up to `workers`
// goroutines — the engine worker-pool idiom (internal/expt/engine),
// restated locally because core sits below the experiment packages.
// The worker index lets callers keep per-goroutine scratch. With one
// worker it degenerates to a serial loop on the caller's goroutine.
func runWorkers(workers, n int, fn func(worker, i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// SolveDAG schedules a general DAG heuristically: it tries every supplied
// linearization strategy (DefaultStrategies when strategies is nil), runs
// the exact per-order DP on each, and returns the best schedule found.
// Proposition 2 says finding the globally optimal order is strongly
// NP-hard, so a portfolio of orders with exact placement per order is the
// principled heuristic.
func SolveDAG(g *dag.Graph, m expectation.Model, cm CostModel, strategies []LinearizationStrategy) (DAGResult, error) {
	return SolveDAGWith(g, m, cm, Options{Strategies: strategies, Workers: 1})
}

// SolveDAGWith is SolveDAG with explicit Options: the portfolio
// strategies run concurrently on Options.Workers goroutines, each
// reusing one set of per-order DP buffers across the strategies it
// solves. Ties between strategies break toward the earlier strategy in
// the portfolio order regardless of worker count, so the result is
// bit-identical to the serial portfolio.
func SolveDAGWith(g *dag.Graph, m expectation.Model, cm CostModel, opts Options) (DAGResult, error) {
	if g.Len() == 0 {
		return DAGResult{}, fmt.Errorf("core: empty graph")
	}
	if err := g.Validate(); err != nil {
		return DAGResult{}, err
	}
	strategies := opts.Strategies
	if strategies == nil {
		strategies = DefaultStrategies()
	}
	workers := opts.workerCount()
	results := make([]DAGResult, len(strategies))
	errs := make([]error, len(strategies))
	scratches := make([]*orderScratch, workers)
	runWorkers(workers, len(strategies), func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = &orderScratch{}
			scratches[w] = sc
		}
		s := strategies[i]
		order, err := s.Order(g)
		if err != nil {
			errs[i] = fmt.Errorf("core: strategy %s: %w", s.Name, err)
			return
		}
		res, err := solveOrderDPWith(g, order, m, cm, sc)
		if err != nil {
			errs[i] = fmt.Errorf("core: strategy %s: %w", s.Name, err)
			return
		}
		res.Strategy = s.Name
		results[i] = res
	})
	best := DAGResult{Expected: infinity}
	for i := range strategies {
		if errs[i] != nil {
			return DAGResult{}, errs[i]
		}
		if results[i].Expected < best.Expected {
			best = results[i]
		}
	}
	return best, nil
}

// SolveDAGExhaustive streams every linearization (up to limit; 0 means
// all) through the exact per-order DP and returns the global optimum
// over enumerated orders. Still factorial in time — it is the
// validation oracle for SolveDAG and SolveDAGLattice on small graphs —
// but O(n) in memory: orders are enumerated by dag.EachTopologicalOrder
// instead of materialized, and the per-order DP reuses one scratch
// across all orders.
//
// For the order-free cost models (LastTaskCosts, LiveSetCosts) the
// reported Expected is re-accumulated through the canonical
// downset-chain arithmetic (see downsetChainValue), making it
// bit-comparable to SolveDAGLattice: both solvers evaluate the same
// mathematical optimum through the same expression tree.
func SolveDAGExhaustive(g *dag.Graph, m expectation.Model, cm CostModel, limit int) (DAGResult, error) {
	if g.Len() == 0 {
		return DAGResult{}, fmt.Errorf("core: empty graph")
	}
	best := DAGResult{Expected: infinity}
	found := false
	var solveErr error
	sc := &orderScratch{}
	g.EachTopologicalOrder(limit, func(order []int) bool {
		res, err := solveOrderDPWith(g, order, m, cm, sc)
		if err != nil {
			solveErr = err
			return false
		}
		found = true
		if res.Expected < best.Expected {
			best = res
		}
		return true
	})
	if solveErr != nil {
		return DAGResult{}, solveErr
	}
	if !found {
		return DAGResult{}, dag.ErrCycle
	}
	best.Strategy = "exhaustive"
	// Instances where every order evaluates to +Inf never improve the
	// sentinel: best has no order, and there is nothing to re-report
	// (an empty chain would canonicalize to 0, not +Inf).
	if len(best.Order) != 0 {
		if v, ok := canonicalValue(g, m, cm, best); ok {
			best.Expected = v
		}
	}
	return best, nil
}
