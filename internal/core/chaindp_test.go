package core

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/numeric"
	"repro/internal/rng"
)

func mustModelT(t *testing.T, lambda, d float64) expectation.Model {
	t.Helper()
	m, err := expectation.NewModel(lambda, d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomChainProblem(t *testing.T, n int, seed uint64, lambda, d float64) *ChainProblem {
	t.Helper()
	r := rng.New(seed)
	g, err := dag.Chain(n, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := NewChainProblem(g, mustModelT(t, lambda, d), 0)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestChainProblemValidation(t *testing.T) {
	m := mustModelT(t, 0.1, 0)
	bad := &ChainProblem{Weights: []float64{1}, Ckpt: []float64{1, 2}, Rec: []float64{1}, Model: m}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched arrays should fail")
	}
	bad2 := &ChainProblem{Weights: []float64{-1}, Ckpt: []float64{1}, Rec: []float64{1}, Model: m}
	if err := bad2.Validate(); err == nil {
		t.Error("negative weight should fail")
	}
	empty := &ChainProblem{Model: m}
	if err := empty.Validate(); err == nil {
		t.Error("empty problem should fail")
	}
	bad3 := &ChainProblem{Weights: []float64{1}, Ckpt: []float64{1}, Rec: []float64{1}, InitialRecovery: -1, Model: m}
	if err := bad3.Validate(); err == nil {
		t.Error("negative initial recovery should fail")
	}
}

func TestNewChainProblemRejectsNonChain(t *testing.T) {
	g := dag.New()
	g.MustAddTask(dag.Task{Weight: 1})
	g.MustAddTask(dag.Task{Weight: 1})
	if _, _, err := NewChainProblem(g, mustModelT(t, 0.1, 0), 0); err == nil {
		t.Error("independent tasks are not a chain")
	}
}

func TestSingleTaskChain(t *testing.T) {
	m := mustModelT(t, 0.1, 0.5)
	cp := &ChainProblem{
		Weights: []float64{10}, Ckpt: []float64{1}, Rec: []float64{2},
		InitialRecovery: 0.3, Model: m,
	}
	res, err := SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	want := m.ExpectedTime(10, 1, 0.3)
	if !numeric.AlmostEqual(res.Expected, want, 1e-12) {
		t.Errorf("single task E = %v, want %v", res.Expected, want)
	}
	if !res.CheckpointAfter[0] {
		t.Error("single position must be checkpointed")
	}
}

func TestDPMatchesBruteForce(t *testing.T) {
	// The paper's Proposition 3: the DP is optimal. Exhaustive check on
	// random heterogeneous chains.
	for seed := uint64(0); seed < 12; seed++ {
		for _, lambda := range []float64{1e-3, 0.02, 0.2} {
			cp := randomChainProblem(t, 10, seed, lambda, 0.4)
			dp, err := SolveChainDP(cp)
			if err != nil {
				t.Fatal(err)
			}
			bf, err := BruteForceChain(cp)
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.AlmostEqual(dp.Expected, bf.Expected, 1e-9) {
				t.Errorf("seed %d λ=%v: DP %v ≠ brute force %v", seed, lambda, dp.Expected, bf.Expected)
			}
			// The DP's own placement must evaluate to its claimed value.
			ev, err := cp.Makespan(dp.CheckpointAfter)
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.AlmostEqual(ev, dp.Expected, 1e-9) {
				t.Errorf("seed %d: plan evaluates to %v, DP claims %v", seed, ev, dp.Expected)
			}
		}
	}
}

func TestRecursiveMatchesIterative(t *testing.T) {
	// The paper-faithful memoized recursion and the iterative DP must
	// agree on value and placement.
	for seed := uint64(20); seed < 30; seed++ {
		cp := randomChainProblem(t, 15, seed, 0.05, 0.2)
		it, err := SolveChainDP(cp)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := SolveChainDPRecursive(cp)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(it.Expected, rec.Expected, 1e-12) {
			t.Errorf("seed %d: iterative %v ≠ recursive %v", seed, it.Expected, rec.Expected)
		}
		for i := range it.CheckpointAfter {
			if it.CheckpointAfter[i] != rec.CheckpointAfter[i] {
				t.Errorf("seed %d: placements differ at %d", seed, i)
				break
			}
		}
	}
}

func TestDPBeatsBaselines(t *testing.T) {
	for seed := uint64(40); seed < 46; seed++ {
		cp := randomChainProblem(t, 20, seed, 0.05, 0.3)
		dp, err := SolveChainDP(cp)
		if err != nil {
			t.Fatal(err)
		}
		always, err := AlwaysCheckpoint(cp)
		if err != nil {
			t.Fatal(err)
		}
		never, err := NeverCheckpoint(cp)
		if err != nil {
			t.Fatal(err)
		}
		period, err := PeriodicCheckpoint(cp, expectation.DalyPeriod(0.3, cp.Model.Lambda))
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1e-9
		if dp.Expected > always.Expected+eps || dp.Expected > never.Expected+eps || dp.Expected > period.Expected+eps {
			t.Errorf("seed %d: DP %v not ≤ baselines (%v, %v, %v)",
				seed, dp.Expected, always.Expected, never.Expected, period.Expected)
		}
	}
}

func TestDPLimitBehaviors(t *testing.T) {
	// Very cheap checkpoints → checkpoint everywhere; very expensive →
	// only the mandatory final one.
	m := mustModelT(t, 0.1, 0)
	n := 8
	mk := func(c float64) *ChainProblem {
		cp := &ChainProblem{
			Weights: make([]float64, n), Ckpt: make([]float64, n), Rec: make([]float64, n), Model: m,
		}
		for i := 0; i < n; i++ {
			cp.Weights[i] = 5
			cp.Ckpt[i] = c
			cp.Rec[i] = c
		}
		return cp
	}
	cheap, err := SolveChainDP(mk(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if got := cheap.Positions(); len(got) != n {
		t.Errorf("free checkpoints: placed %d of %d", len(got), n)
	}
	dear, err := SolveChainDP(mk(1e6))
	if err != nil {
		t.Fatal(err)
	}
	if got := dear.Positions(); len(got) != 1 || got[0] != n-1 {
		t.Errorf("prohibitive checkpoints: positions %v, want only final", got)
	}
}

func TestBruteForceCap(t *testing.T) {
	cp := randomChainProblem(t, 25, 1, 0.01, 0)
	if _, err := BruteForceChain(cp); err == nil {
		t.Error("brute force beyond the cap should fail")
	}
}

func TestMakespanErrors(t *testing.T) {
	cp := randomChainProblem(t, 4, 2, 0.01, 0)
	if _, err := cp.Makespan([]bool{true, true}); err == nil {
		t.Error("wrong-length vector should fail")
	}
	if _, err := cp.Makespan([]bool{true, true, true, false}); err == nil {
		t.Error("missing final checkpoint should fail")
	}
}

func TestSegments(t *testing.T) {
	m := mustModelT(t, 0.1, 0)
	cp := &ChainProblem{
		Weights:         []float64{1, 2, 3, 4},
		Ckpt:            []float64{10, 20, 30, 40},
		Rec:             []float64{11, 21, 31, 41},
		InitialRecovery: 7,
		Model:           m,
	}
	segs, err := cp.Segments([]bool{false, true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments", len(segs))
	}
	s0, s1 := segs[0], segs[1]
	if s0.Work != 3 || s0.Checkpoint != 20 || s0.Recovery != 7 || s0.Start != 0 || s0.End != 1 {
		t.Errorf("segment 0 = %+v", s0)
	}
	if s1.Work != 7 || s1.Checkpoint != 40 || s1.Recovery != 21 || s1.Start != 2 || s1.End != 3 {
		t.Errorf("segment 1 = %+v", s1)
	}
}

func TestFailureFreeMakespan(t *testing.T) {
	cp := randomChainProblem(t, 6, 3, 0.01, 0)
	ck := make([]bool, 6)
	ck[5] = true
	got, err := cp.FailureFreeMakespan(ck)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, w := range cp.Weights {
		want += w
	}
	want += cp.Ckpt[5]
	if !numeric.AlmostEqual(got, want, 1e-12) {
		t.Errorf("failure-free = %v, want %v", got, want)
	}
	// Expected makespan dominates the failure-free one.
	e, _ := cp.Makespan(ck)
	if e < got {
		t.Errorf("expected %v below failure-free %v", e, got)
	}
}

func TestMakespanSubadditivityOfCheckpointRemoval(t *testing.T) {
	// Adding a checkpoint to a placement changes the makespan exactly as
	// the segment split predicts; check internal consistency on a case
	// where checkpointing helps: long chain, high λ.
	m := mustModelT(t, 0.5, 0.1)
	n := 6
	cp := &ChainProblem{
		Weights: make([]float64, n), Ckpt: make([]float64, n), Rec: make([]float64, n), Model: m,
	}
	for i := range cp.Weights {
		cp.Weights[i] = 3
		cp.Ckpt[i] = 0.1
		cp.Rec[i] = 0.1
	}
	never, _ := NeverCheckpoint(cp)
	always, _ := AlwaysCheckpoint(cp)
	if always.Expected >= never.Expected {
		t.Errorf("with λ=0.5 checkpoints must pay off: always %v vs never %v", always.Expected, never.Expected)
	}
}

func TestPeriodicCheckpointDegenerate(t *testing.T) {
	cp := randomChainProblem(t, 5, 9, 0.01, 0)
	res, err := PeriodicCheckpoint(cp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions()) != 5 {
		t.Errorf("period 0 should checkpoint everywhere, got %v", res.Positions())
	}
	res2, err := PeriodicCheckpoint(cp, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Positions(); len(got) != 1 || got[0] != 4 {
		t.Errorf("infinite period should only keep final checkpoint, got %v", got)
	}
}

func TestInitialRecoveryMatters(t *testing.T) {
	m := mustModelT(t, 0.2, 0)
	base := &ChainProblem{
		Weights: []float64{5, 5}, Ckpt: []float64{0.5, 0.5}, Rec: []float64{0.5, 0.5}, Model: m,
	}
	withR0 := &ChainProblem{
		Weights: []float64{5, 5}, Ckpt: []float64{0.5, 0.5}, Rec: []float64{0.5, 0.5},
		InitialRecovery: 3, Model: m,
	}
	e0, _ := SolveChainDP(base)
	e1, _ := SolveChainDP(withR0)
	if e1.Expected <= e0.Expected {
		t.Errorf("positive R₀ must increase the optimum: %v vs %v", e1.Expected, e0.Expected)
	}
}
