package core

import (
	"fmt"

	"repro/internal/expectation"
)

// This file holds solver variants beyond the paper's Algorithm 1:
//
//   - SolveChainDPBounded: optimal placement using at most k checkpoints
//     (checkpoint storage is often a constrained resource), in O(n²k);
//   - SolveChainDPHomogeneous: a decision-monotone pruned solver for the
//     homogeneous-cost case, exploiting a Monge property of the
//     segment-cost matrix. It is an ablation of the paper's O(n²) bound:
//     the generality of per-task costs is what blocks the pruning.

// SolveChainDPBounded computes the optimal placement subject to using at
// most maxCheckpoints checkpoints (including the mandatory final one).
// The DP layers the Algorithm 1 recurrence by remaining budget:
// E_k(x) = min_j segment(x, j) + E_{k−1}(j+1). Like SolveChainDP it is
// a certifier-gated portfolio: instances certified totally monotone run
// the layered divide-and-conquer arm (O(k·n log n) oracle evaluations,
// see boundedMonotoneLayers), everything else the kernel scan with the
// exact monotone pruning bound (O(n²·k) worst case). Transitions are
// evaluated through the segment-expectation kernel (the segment term
// does not depend on the budget layer, so one kernel serves every
// layer); the reported Expected is re-accumulated over the chosen
// placement with the reference arithmetic, like SolveChainDP.
func SolveChainDPBounded(cp *ChainProblem, maxCheckpoints int) (ChainResult, error) {
	res, _, err := SolveChainDPBoundedStats(cp, maxCheckpoints)
	return res, err
}

// SolveChainDPBoundedStats is SolveChainDPBounded, additionally
// reporting the dispatched arm and its oracle-evaluation count.
func SolveChainDPBoundedStats(cp *ChainProblem, maxCheckpoints int) (ChainResult, DPStats, error) {
	if err := cp.Validate(); err != nil {
		return ChainResult{}, DPStats{}, err
	}
	n := cp.Len()
	if maxCheckpoints < 1 {
		return ChainResult{}, DPStats{}, fmt.Errorf("core: need at least one checkpoint (the final one), got budget %d", maxCheckpoints)
	}
	if maxCheckpoints > n {
		maxCheckpoints = n
	}
	kern, err := cp.kernel()
	if err != nil {
		return ChainResult{}, DPStats{}, err
	}
	var (
		next  [][]int
		stats DPStats
	)
	if cert := kern.CertifyQuadrangle(); cert.Certified {
		var evals int64
		_, next, evals = boundedMonotoneLayers(kern, maxCheckpoints)
		stats = DPStats{Transitions: evals, Arm: ArmMonotone, Certified: true}
	} else {
		var evals int64
		next, evals = boundedKernelLayers(kern, maxCheckpoints)
		stats = DPStats{Transitions: evals, Arm: ArmKernel}
	}
	res, err := boundedResultFromNext(cp, next, maxCheckpoints)
	return res, stats, err
}

// boundedKernelLayers runs the kernel-scan arm of the budgeted DP: each
// layer's inner scan is pruned with the kernel's exact monotone bound.
func boundedKernelLayers(kern *expectation.SegmentKernel, maxCheckpoints int) ([][]int, int64) {
	n := kern.Len()
	slack := kern.Slack()
	var evals int64
	// best[k][x]: optimal expected time for positions x..n−1 with at
	// most k checkpoints. k = 0 is infeasible (every plan ends with a
	// checkpoint).
	best := make([][]float64, maxCheckpoints+1)
	next := make([][]int, maxCheckpoints+1)
	for k := range best {
		best[k] = make([]float64, n+1)
		next[k] = make([]int, n)
		for x := 0; x < n; x++ {
			best[k][x] = infinity
			next[k][x] = -1
		}
	}
	for k := 1; k <= maxCheckpoints; k++ {
		for x := n - 1; x >= 0; x-- {
			// Option: single segment to the end.
			evals++
			best[k][x] = kern.Segment(x, n-1)
			next[k][x] = n - 1
			if k == 1 {
				continue
			}
			for j := x; j < n-1; j++ {
				if best[k-1][j+1] != infinity {
					evals++
					cur := kern.Segment(x, j) + best[k-1][j+1]
					if cur < best[k][x] {
						best[k][x] = cur
						next[k][x] = j
					}
				}
				if kern.Bound(x, j+1) >= best[k][x]*slack {
					break
				}
			}
		}
	}
	return next, evals
}

// boundedResultFromNext reconstructs the bounded plan from the layered
// decisions and re-accumulates the value with the reference arithmetic,
// associating like the layered recurrence (segment + suffix, right to
// left).
func boundedResultFromNext(cp *ChainProblem, next [][]int, maxCheckpoints int) (ChainResult, error) {
	n := cp.Len()
	ck := make([]bool, n)
	k := maxCheckpoints
	segStarts := make([]int, 0, maxCheckpoints)
	segEnds := make([]int, 0, maxCheckpoints)
	for x := 0; x < n; {
		j := next[k][x]
		if j < 0 {
			return ChainResult{}, fmt.Errorf("core: internal reconstruction failure at x=%d k=%d", x, k)
		}
		ck[j] = true
		segStarts = append(segStarts, x)
		segEnds = append(segEnds, j)
		x = j + 1
		if k > 1 {
			k--
		}
	}
	prefix := make([]float64, n+1)
	for i, w := range cp.Weights {
		prefix[i+1] = prefix[i] + w
	}
	total := 0.0
	for i := len(segStarts) - 1; i >= 0; i-- {
		x, j := segStarts[i], segEnds[i]
		total = cp.Model.ExpectedTime(prefix[j+1]-prefix[x], cp.Ckpt[j], cp.recoveryBefore(x)) + total
	}
	return ChainResult{Expected: total, CheckpointAfter: ck}, nil
}

// IsHomogeneous reports whether all checkpoint costs and all recovery
// costs are constant (including the initial recovery matching R), the
// precondition of SolveChainDPHomogeneous.
func (cp *ChainProblem) IsHomogeneous() bool {
	n := cp.Len()
	if n == 0 {
		return false
	}
	c0, r0 := cp.Ckpt[0], cp.Rec[0]
	for i := 1; i < n; i++ {
		if cp.Ckpt[i] != c0 || cp.Rec[i] != r0 {
			return false
		}
	}
	return cp.InitialRecovery == r0
}

// SolveChainDPHomogeneous solves the constant-cost chain problem with a
// decision-monotone pruned scan.
//
// Why the pruning is sound: with constant C and R, the segment cost
// cost(x, j) = e^{λR}(1/λ+D)(e^{λ(P(j+1)−P(x)+C)} − 1) satisfies the
// (concave) Monge / quadrangle inequality
//
//	cost(x, j) + cost(x+1, j+1) ≤ cost(x, j+1) + cost(x+1, j),
//
// because it factors as a(x)·b(j) + const with a(x) = e^{−λP(x)}
// decreasing and b(j) = e^{λ(P(j+1)+C)} increasing: the cross-difference
// telescopes to (b(j+1) − b(j))(a(x+1) − a(x)) ≤ 0. Monge costs make the
// optimal first-checkpoint position next[x] of the suffix recurrence
// E(x) = min_{j≥x} cost(x, j) + E(j+1) nondecreasing in x, so when
// processing x right-to-left the scan can stop at next[x+1]. Per-task
// costs break the monotonicity of b (and of the recovery factor), which
// is why the paper's general algorithm stays O(n²).
//
// The pruned scan is exact whenever IsHomogeneous holds; it is typically
// near-linear (the brackets [x, next[x+1]] are short when checkpoints are
// frequent) with an O(n²) worst case in checkpoint-free regimes. Tests
// verify it against SolveChainDP on random homogeneous instances.
func SolveChainDPHomogeneous(cp *ChainProblem) (ChainResult, error) {
	if err := cp.Validate(); err != nil {
		return ChainResult{}, err
	}
	if !cp.IsHomogeneous() {
		return ChainResult{}, fmt.Errorf("core: homogeneous solver requires constant C, R and R₀ = R")
	}
	n := cp.Len()
	prefix := make([]float64, n+1)
	for i, w := range cp.Weights {
		prefix[i+1] = prefix[i] + w
	}
	c := cp.Ckpt[0]
	r := cp.Rec[0]
	best := make([]float64, n+1)
	next := make([]int, n+1)
	next[n] = n - 1 // sentinel upper bracket for x = n−1
	cost := func(x, j int) float64 {
		return cp.Model.ExpectedTime(prefix[j+1]-prefix[x], c, r)
	}
	for x := n - 1; x >= 0; x-- {
		// Monotone decisions: next[x] ≤ next[x+1]. (With Monge costs the
		// optimal j is nondecreasing in x; we scan only the bracket.)
		hi := n - 1
		if x+1 <= n-1 {
			hi = next[x+1]
		}
		bestE := infinity
		bestJ := hi
		for j := x; j <= hi; j++ {
			cur := cost(x, j) + best[j+1]
			if cur < bestE {
				bestE = cur
				bestJ = j
			}
		}
		best[x] = bestE
		next[x] = bestJ
	}
	ck := make([]bool, n)
	for x := 0; x < n; {
		j := next[x]
		ck[j] = true
		x = j + 1
	}
	return ChainResult{Expected: best[0], CheckpointAfter: ck}, nil
}
