package core

import (
	"fmt"
	"math"

	"repro/internal/expectation"
	"repro/internal/partition"
)

// ReducedInstance is the scheduling instance produced from a 3-PARTITION
// instance by the reduction of Proposition 2:
//
//	λ = 1/(2T),  C = R = (ln 2 − 1/2)/λ,  D = 0,
//	K = n · e^{λC}/λ · (e^{λ(T+C)} − 1).
//
// These parameters are rigged so that e^{λ(T+C)} = 2 exactly, making the
// per-group cost function g(m) minimized at m = n with equal group sums T:
// the scheduling instance has expected makespan ≤ K iff the 3-PARTITION
// instance is a yes-instance.
type ReducedInstance struct {
	// Source is the originating 3-PARTITION instance.
	Source partition.Instance
	// Problem is the resulting independent-task scheduling instance.
	Problem IndependentProblem
	// Bound is the decision threshold K.
	Bound float64
}

// BuildReduction constructs the Proposition 2 reduction.
func BuildReduction(in partition.Instance) (*ReducedInstance, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	t := float64(in.Target)
	lambda := 1 / (2 * t)
	c := (math.Ln2 - 0.5) / lambda
	model, err := expectation.NewModel(lambda, 0)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(in.Items))
	for i, a := range in.Items {
		weights[i] = float64(a)
	}
	n := float64(in.Groups())
	k := n * math.Exp(lambda*c) / lambda * math.Expm1(lambda*(t+c))
	return &ReducedInstance{
		Source: in,
		Problem: IndependentProblem{
			Weights:    weights,
			Checkpoint: c,
			Recovery:   c,
			Model:      model,
		},
		Bound: k,
	}, nil
}

// RiggedExponent returns e^{λ(T+C)}, which the reduction fixes at exactly
// 2; exposed so tests and experiment E5 can check the construction.
func (ri *ReducedInstance) RiggedExponent() float64 {
	t := float64(ri.Source.Target)
	return math.Exp(ri.Problem.Model.Lambda * (t + ri.Problem.Checkpoint))
}

// GroupingFromPartition converts a 3-PARTITION witness into the schedule
// of the forward direction of the proof: each triple becomes one
// checkpoint group. Its expectation equals the bound K.
func (ri *ReducedInstance) GroupingFromPartition(sol partition.Solution) (Grouping, error) {
	if err := ri.Source.Check(sol); err != nil {
		return Grouping{}, err
	}
	groups := make([][]int, len(sol))
	for i, g := range sol {
		groups[i] = append([]int(nil), g...)
	}
	e, err := ri.Problem.Evaluate(groups)
	if err != nil {
		return Grouping{}, err
	}
	return Grouping{Groups: groups, Expected: e}, nil
}

// DecideByScheduling answers the 3-PARTITION question by solving the
// reduced scheduling instance exactly and comparing to K: the backward
// direction of the proof. Only valid for instances small enough for the
// exact solver.
func (ri *ReducedInstance) DecideByScheduling() (bool, Grouping, error) {
	g, err := SolveIndependentExact(&ri.Problem)
	if err != nil {
		return false, Grouping{}, err
	}
	// The proof shows E* = K exactly on yes-instances and E* > K on
	// no-instances; the tolerance absorbs floating-point rounding.
	const relTol = 1e-9
	return g.Expected <= ri.Bound*(1+relTol), g, nil
}

// GapToBound returns (E* − K)/K for a grouping, the normalized distance to
// the decision threshold (0 on optimal schedules of yes-instances,
// strictly positive on no-instances).
func (ri *ReducedInstance) GapToBound(g Grouping) float64 {
	return (g.Expected - ri.Bound) / ri.Bound
}

// ReductionSizes reports the reduced instance's parameters for experiment
// tables.
func (ri *ReducedInstance) String() string {
	return fmt.Sprintf("3-PARTITION(n=%d, T=%d) → schedule(λ=%.6g, C=R=%.6g, K=%.6g)",
		ri.Source.Groups(), ri.Source.Target, ri.Problem.Model.Lambda, ri.Problem.Checkpoint, ri.Bound)
}
