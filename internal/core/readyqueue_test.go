package core

import (
	"sort"
	"testing"

	"repro/internal/dag"
	"repro/internal/rng"
)

// readyListOrderSorted is the pre-heap reference: re-sort the whole
// ready list at every step and take its head. The heap version must
// reproduce its output exactly (both pop the unique minimum of a total
// order).
func readyListOrderSorted(g *dag.Graph, less func(a, b dag.Task) bool) ([]int, error) {
	n := g.Len()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.Predecessors(i))
	}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool { return less(g.Task(ready[a]), g.Task(ready[b])) })
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, s := range g.Successors(v) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return nil, dag.ErrCycle
	}
	return order, nil
}

func TestReadyQueueMatchesSortedReference(t *testing.T) {
	r := rng.New(77)
	builders := []func(s *rng.Stream) (*dag.Graph, error){
		func(s *rng.Stream) (*dag.Graph, error) { return dag.Layered(5, 6, 0.4, dag.DefaultWeights(), s) },
		func(s *rng.Stream) (*dag.Graph, error) { return dag.ForkJoin(4, 5, dag.DefaultWeights(), s) },
		func(s *rng.Stream) (*dag.Graph, error) { return dag.Chain(20, dag.DefaultWeights(), s) },
		func(s *rng.Stream) (*dag.Graph, error) { return dag.MontageLike(8, dag.DefaultWeights(), s) },
	}
	strategies := []LinearizationStrategy{HeaviestFirstStrategy(), CheapCheckpointFirstStrategy()}
	for bi, build := range builders {
		for trial := 0; trial < 5; trial++ {
			g, err := build(r.Split())
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range strategies {
				got, err := st.Order(g)
				if err != nil {
					t.Fatal(err)
				}
				var less func(a, b dag.Task) bool
				switch st.Name {
				case "heaviest-first":
					less = func(a, b dag.Task) bool {
						if a.Weight != b.Weight {
							return a.Weight > b.Weight
						}
						return a.ID < b.ID
					}
				case "cheap-ckpt-first":
					less = func(a, b dag.Task) bool {
						if a.Checkpoint != b.Checkpoint {
							return a.Checkpoint < b.Checkpoint
						}
						return a.ID < b.ID
					}
				}
				want, err := readyListOrderSorted(g, less)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("builder %d %s: length %d vs %d", bi, st.Name, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("builder %d %s: order differs at %d: %v vs %v", bi, st.Name, i, got, want)
					}
				}
			}
		}
	}
}
