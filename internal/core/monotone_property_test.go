package core

import (
	"math"
	"testing"

	"repro/internal/expectation"
	"repro/internal/numeric"
	"repro/internal/rng"
)

// These property tests pin the monotone-matrix arm to the established
// solvers — the kernel scan (which shares its oracle bit-for-bit), the
// dense seed loop, the paper's memoized recursion, and brute force —
// across the regimes the satellite checklist names: weights and costs
// drawn from uniform/exponential/Weibull/log-normal laws, zero-cost
// checkpoints, the expm1 small-argument regime, and the exp-overflow
// boundary. They also pin the certifier-gated dispatch: certified
// instances take the monotone arm, uncertified instances demonstrably
// fall back to the kernel arm with identical results.

// drawPositive samples one nonnegative parameter from the law-indexed
// family (0 uniform, 1 exponential, 2 log-normal, 3 Weibull k=0.7), so
// the equivalence sweep covers heavy-tailed and concentrated instances
// alike.
func drawPositive(r *rng.Stream, law int, scale float64) float64 {
	switch law % 4 {
	case 0:
		return r.Range(0, scale)
	case 1:
		return scale * r.ExpFloat64()
	case 2:
		return scale * math.Exp(0.5*r.NormFloat64())
	default:
		u := r.Float64()
		return scale * math.Pow(-math.Log1p(-u+1e-300), 1/0.7)
	}
}

// randomLawChain draws a chain with parameters from the given law;
// zeroFrac zeroes individual weights/costs to exercise exact ties.
func randomLawChain(r *rng.Stream, n, law int, lambda, scale, zeroFrac float64) *ChainProblem {
	cp := &ChainProblem{
		Weights:         make([]float64, n),
		Ckpt:            make([]float64, n),
		Rec:             make([]float64, n),
		InitialRecovery: r.Range(0, scale/10),
		Model:           expectation.Model{Lambda: lambda, Downtime: r.Range(0, 2)},
	}
	draw := func(s float64) float64 {
		if r.Float64() < zeroFrac {
			return 0
		}
		return drawPositive(r, law, s)
	}
	for i := 0; i < n; i++ {
		cp.Weights[i] = draw(scale)
		cp.Ckpt[i] = draw(scale / 5)
		cp.Rec[i] = draw(scale / 5)
	}
	return cp
}

// certify runs the certifier on the problem's kernel.
func certify(t testing.TB, cp *ChainProblem) expectation.QICertificate {
	kern, err := cp.kernel()
	if err != nil {
		t.Fatal(err)
	}
	return kern.CertifyQuadrangle()
}

// checkChainEquivalence cross-checks every solver arm on one instance:
// the dispatching portfolio, the pinned kernel arm, the dense loop, and
// the recursion; on certified instances also the pinned monotone arm.
// The portfolio must reproduce the arm it dispatched to bit-for-bit.
func checkChainEquivalence(t *testing.T, tag string, cp *ChainProblem) {
	t.Helper()
	auto, stats, err := SolveChainDPStats(cp)
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := SolveChainDPKernel(cp)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := SolveChainDPDense(cp)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := SolveChainDPRecursive(cp)
	if err != nil {
		t.Fatal(err)
	}
	cert := certify(t, cp)
	if cert.Certified != (stats.Arm == ArmMonotone) {
		t.Fatalf("%s: certificate %v but dispatched arm %s", tag, cert.Certified, stats.Arm)
	}
	if cert.Certified {
		mono, mstats, err := SolveChainDPMonotoneStats(cp)
		if err != nil {
			t.Fatal(err)
		}
		if mono.Expected != auto.Expected && !(math.IsNaN(mono.Expected) && math.IsNaN(auto.Expected)) {
			t.Fatalf("%s: pinned monotone %v differs from dispatched portfolio %v", tag, mono.Expected, auto.Expected)
		}
		if mstats.Transitions != stats.Transitions {
			t.Fatalf("%s: pinned monotone evals %d vs portfolio %d", tag, mstats.Transitions, stats.Transitions)
		}
		checkAgainst(t, tag+": monotone vs kernel", cp, mono, kernel, true)
		checkAgainst(t, tag+": monotone vs dense", cp, mono, dense, true)
		checkAgainst(t, tag+": monotone vs recursive", cp, mono, rec, false)
	} else {
		// Uncertified: the portfolio must be the kernel arm, verbatim.
		if auto.Expected != kernel.Expected && !(math.IsNaN(auto.Expected) && math.IsNaN(kernel.Expected)) {
			t.Fatalf("%s: fallback Expected %v differs from kernel arm %v", tag, auto.Expected, kernel.Expected)
		}
		for i := range auto.CheckpointAfter {
			if auto.CheckpointAfter[i] != kernel.CheckpointAfter[i] {
				t.Fatalf("%s: fallback placement differs from kernel arm at %d", tag, i)
			}
		}
		if _, err := SolveChainDPMonotone(cp); err == nil {
			t.Fatalf("%s: pinned monotone arm accepted an uncertified instance", tag)
		}
		checkAgainst(t, tag+": kernel vs dense", cp, auto, dense, true)
	}
}

func TestMonotoneDPEquivalenceRandom(t *testing.T) {
	r := rng.New(606)
	lambdas := []float64{1e-9, 1e-6, 1e-3, 0.02, 0.3, 2}
	for trial := 0; trial < 120; trial++ {
		lambda := lambdas[trial%len(lambdas)]
		law := trial % 4
		n := 1 + int(r.Uint64()%48)
		cp := randomLawChain(r, n, law, lambda, 10, 0.1)
		checkChainEquivalence(t, "random law chain", cp)
	}
}

// TestMonotoneDPZeroCostCheckpoints drives the all-zero-checkpoint and
// mixed-zero regimes, where exact decision ties are common; both arms
// must still resolve them toward the earliest end position.
func TestMonotoneDPZeroCostCheckpoints(t *testing.T) {
	r := rng.New(707)
	for trial := 0; trial < 40; trial++ {
		n := 1 + int(r.Uint64()%30)
		cp := randomLawChain(r, n, trial, 0.05, 8, 0)
		for i := range cp.Ckpt {
			cp.Ckpt[i] = 0
			if trial%2 == 0 {
				cp.Rec[i] = 0
			}
		}
		if trial%2 == 0 {
			cp.InitialRecovery = 0
			// With C ≡ 0 the end table climbs by λw ≥ 0 and with R ≡ 0 the
			// start factor only decays, so these instances must certify.
			if c := certify(t, cp); !c.Certified {
				t.Fatalf("zero-cost chain must certify, got %q", c.Reason)
			}
		}
		checkChainEquivalence(t, "zero-cost checkpoints", cp)
	}
}

// TestMonotoneDPOverflowRegime mirrors TestKernelDPOverflowRegime for
// the monotone arm: λ(W+C) crossing numeric.MaxExpArg must keep the
// arms agreeing on representable plans (astronomically large values may
// straddle +Inf between placements, like kernel-vs-dense).
func TestMonotoneDPOverflowRegime(t *testing.T) {
	r := rng.New(808)
	for trial := 0; trial < 30; trial++ {
		n := 4 + int(r.Uint64()%12)
		cp := randomLawChain(r, n, trial, 1, 10, 0.05)
		var total float64
		for _, w := range cp.Weights {
			total += w
		}
		if total == 0 {
			continue
		}
		target := numeric.MaxExpArg * (0.5 + 1.5*r.Float64())
		scale := target / total
		for i := range cp.Weights {
			cp.Weights[i] *= scale
		}
		checkChainEquivalence(t, "overflow regime", cp)
	}
}

// TestMonotoneDPTinyLambda pins the expm1 regime λw ≪ 1: every oracle
// call takes the stable path, so on matching placements all arms are
// bit-identical to the dense reference.
func TestMonotoneDPTinyLambda(t *testing.T) {
	r := rng.New(909)
	for trial := 0; trial < 20; trial++ {
		n := 1 + int(r.Uint64()%30)
		cp := randomLawChain(r, n, trial, 1e-12, 5, 0.1)
		checkChainEquivalence(t, "expm1 regime", cp)
	}
}

// TestMonotoneDispatchFallback pins the dispatch contract on handmade
// instances from both sides of the certification boundary.
func TestMonotoneDispatchFallback(t *testing.T) {
	m := expectation.Model{Lambda: 0.1, Downtime: 0.5}
	certified := &ChainProblem{
		Weights: []float64{3, 4, 2, 5, 1},
		Ckpt:    []float64{0.5, 0.5, 0.5, 0.5, 0.5},
		Rec:     []float64{0.5, 0.5, 0.5, 0.5, 0.5},
		Model:   m,
	}
	_, stats, err := SolveChainDPStats(certified)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Arm != ArmMonotone || !stats.Certified {
		t.Fatalf("homogeneous instance: arm %s certified %v, want monotone/true", stats.Arm, stats.Certified)
	}

	// A checkpoint-cost drop larger than the next weight breaks the end
	// table's monotonicity → kernel fallback.
	drop := &ChainProblem{
		Weights: []float64{3, 0.1, 2, 5, 1},
		Ckpt:    []float64{9, 0.1, 0.5, 0.5, 0.5},
		Rec:     []float64{0.5, 0.5, 0.5, 0.5, 0.5},
		Model:   m,
	}
	res, stats, err := SolveChainDPStats(drop)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Arm != ArmKernel || stats.Certified {
		t.Fatalf("checkpoint-drop instance: arm %s certified %v, want kernel/false", stats.Arm, stats.Certified)
	}
	kres, kstats, err := SolveChainDPKernelStats(drop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Expected != kres.Expected || stats.Transitions != kstats.Transitions {
		t.Fatalf("fallback result (%v, %d evals) differs from pinned kernel arm (%v, %d evals)",
			res.Expected, stats.Transitions, kres.Expected, kstats.Transitions)
	}

	// A recovery-cost jump larger than the task weight breaks the start
	// factor's monotonicity → kernel fallback.
	jump := &ChainProblem{
		Weights: []float64{3, 0.2, 2, 5, 1},
		Ckpt:    []float64{0.5, 0.6, 0.7, 0.8, 0.9},
		Rec:     []float64{0.1, 40, 0.5, 0.5, 0.5},
		Model:   m,
	}
	if _, stats, err = SolveChainDPStats(jump); err != nil {
		t.Fatal(err)
	}
	if stats.Arm != ArmKernel {
		t.Fatalf("recovery-jump instance dispatched to %s, want kernel", stats.Arm)
	}
	if _, err := SolveChainDPMonotone(jump); err == nil {
		t.Fatal("pinned monotone arm accepted an uncertified instance")
	}
}

// TestMonotoneMatchesKernelMedium locks the arms together on the E16
// workload family at a size large enough for thousands of decision
// rows: placements and reported values must be identical, which is what
// keeps the experiment fingerprints byte-stable under dispatch.
func TestMonotoneMatchesKernelMedium(t *testing.T) {
	for _, lambda := range []float64{0.01, 0.001} {
		r := rng.New(42)
		n := 4000
		cp := &ChainProblem{
			Weights:         make([]float64, n),
			Ckpt:            make([]float64, n),
			Rec:             make([]float64, n),
			InitialRecovery: 0,
			Model:           expectation.Model{Lambda: lambda, Downtime: 0.5},
		}
		for i := 0; i < n; i++ {
			cp.Weights[i] = r.Range(1, 10)
			cp.Ckpt[i] = r.Range(0.05, 0.5)
			cp.Rec[i] = cp.Ckpt[i]
		}
		mono, stats, err := SolveChainDPStats(cp)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Arm != ArmMonotone {
			t.Fatalf("λ=%v: expected monotone dispatch, got %s", lambda, stats.Arm)
		}
		kern, err := SolveChainDPKernel(cp)
		if err != nil {
			t.Fatal(err)
		}
		if mono.Expected != kern.Expected {
			t.Fatalf("λ=%v: Expected %v vs kernel %v", lambda, mono.Expected, kern.Expected)
		}
		for i := range mono.CheckpointAfter {
			if mono.CheckpointAfter[i] != kern.CheckpointAfter[i] {
				t.Fatalf("λ=%v: placement differs at %d", lambda, i)
			}
		}
	}
}

// TestBoundedMonotoneEquivalence pins the budgeted monotone arm to the
// kernel-scan arm and to brute force under every budget.
func TestBoundedMonotoneEquivalence(t *testing.T) {
	r := rng.New(1010)
	for trial := 0; trial < 30; trial++ {
		lambda := []float64{1e-6, 0.02, 0.5}[trial%3]
		n := 2 + int(r.Uint64()%14)
		cp := randomLawChain(r, n, trial, lambda, 8, 0.1)
		kern, err := cp.kernel()
		if err != nil {
			t.Fatal(err)
		}
		cert := kern.CertifyQuadrangle()
		for budget := 1; budget <= n; budget += 1 + n/4 {
			got, stats, err := SolveChainDPBoundedStats(cp, budget)
			if err != nil {
				t.Fatal(err)
			}
			wantArm := ArmKernel
			if cert.Certified {
				wantArm = ArmMonotone
			}
			if stats.Arm != wantArm {
				t.Fatalf("bounded dispatch arm %s, want %s", stats.Arm, wantArm)
			}
			// Cross-check against the other arm's layered decisions.
			kNext, _ := boundedKernelLayers(kern, min(budget, n))
			kRes, err := boundedResultFromNext(cp, kNext, min(budget, n))
			if err != nil {
				t.Fatal(err)
			}
			if math.IsInf(got.Expected, 1) && math.IsInf(kRes.Expected, 1) {
				continue
			}
			if numeric.RelErr(got.Expected, kRes.Expected) > 1e-11 {
				t.Fatalf("n=%d budget=%d: %s arm %v vs kernel layers %v", n, budget, stats.Arm, got.Expected, kRes.Expected)
			}
			if nCk := len(got.Positions()); nCk > budget {
				t.Fatalf("budget %d exceeded: %d checkpoints", budget, nCk)
			}
		}
	}
}

// FuzzChainDPMonotone fuzzes the full solver portfolio: any instance
// the fuzzer can construct must keep the dispatched arm, the pinned
// kernel arm, and the dense reference in agreement.
func FuzzChainDPMonotone(f *testing.F) {
	f.Add(uint64(1), uint(12), 0.02, 5.0, uint8(0))
	f.Add(uint64(2), uint(30), 1e-9, 10.0, uint8(1))
	f.Add(uint64(3), uint(7), 2.0, 100.0, uint8(2))
	f.Add(uint64(4), uint(20), 0.3, 0.01, uint8(3))
	f.Add(uint64(5), uint(3), 1.0, 2000.0, uint8(0))
	// Fuzzer-found boundary cases: huge-magnitude values where the
	// recursion's raw-weight final segment diverges from the prefix
	// arithmetic by several ulps of λ·P(n).
	f.Add(uint64(52), uint(129), 0.5555555555555556, 506.22222222222223, uint8(0x1a))
	f.Add(uint64(121), uint(7), 0.051666666666666666, 3477.0, uint8(0xe2))
	f.Fuzz(func(t *testing.T, seed uint64, n uint, lambda, scale float64, law uint8) {
		size := 1 + int(n%64)
		if !(lambda > 0) || math.IsInf(lambda, 0) || math.IsNaN(lambda) {
			t.Skip()
		}
		if !(scale >= 0) || math.IsInf(scale, 0) || scale > 1e12 {
			t.Skip()
		}
		cp := randomLawChain(rng.New(seed), size, int(law), lambda, scale, 0.15)
		checkChainEquivalence(t, "fuzz", cp)
	})
}
