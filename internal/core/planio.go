package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// planFile is the on-disk JSON representation of a Plan: the execution
// order plus the positions (indices into the order) that carry
// checkpoints. cmd/chkptplan writes it; cmd/chkptsim replays it.
type planFile struct {
	Order       []int `json:"order"`
	Checkpoints []int `json:"checkpoints"`
}

// MarshalJSON encodes the plan in the plan file format.
func (p Plan) MarshalJSON() ([]byte, error) {
	if err := p.Validate(nil); err != nil {
		return nil, err
	}
	return json.Marshal(planFile{Order: p.Order, Checkpoints: p.Checkpoints()})
}

// UnmarshalJSON decodes and validates the plan file format.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var pf planFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return fmt.Errorf("core: decode plan: %w", err)
	}
	fresh, err := NewPlan(pf.Order, pf.Checkpoints...)
	if err != nil {
		return err
	}
	// NewPlan silently adds the final checkpoint; reject files whose
	// checkpoint list was inconsistent beyond that convenience.
	for _, pos := range pf.Checkpoints {
		if pos < 0 || pos >= len(pf.Order) {
			return fmt.Errorf("%w: checkpoint position %d out of range", ErrBadPlan, pos)
		}
	}
	*p = fresh
	return nil
}

// WritePlan encodes the plan to w with indentation.
func WritePlan(w io.Writer, p Plan) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadPlan decodes a plan from r.
func ReadPlan(r io.Reader) (Plan, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Plan{}, fmt.Errorf("core: read plan: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, err
	}
	return p, nil
}
