// Package core implements the paper's primary contribution: the
// checkpoint-scheduling problem for computational workflows under
// Exponential failures. It contains
//
//   - the plan/segment model and the exact expected-makespan evaluator
//     built on Proposition 1 (plan.go);
//   - Algorithm 1, the O(n²) dynamic program for linear chains of
//     Proposition 3, in both the paper's memoized-recursion form and an
//     iterative form, with plan reconstruction (chaindp.go);
//   - exact and heuristic solvers for the independent-task instance class
//     of Proposition 2 (independent.go);
//   - the 3-PARTITION reduction of Proposition 2, buildable and checkable
//     numerically (reduction.go);
//   - linearization + checkpoint-placement scheduling for general DAGs,
//     including the content-dependent checkpoint-cost extension of
//     Section 6 (dagsched.go).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/expectation"
)

// Plan is a complete schedule: an execution order for the tasks (a
// linearization of the DAG, per the full-parallelism assumption) plus the
// decision, after each position, of whether to checkpoint.
//
// Following Algorithm 1, the final position always carries a checkpoint;
// callers who do not want to pay a terminal checkpoint give the final task
// a zero checkpoint cost.
type Plan struct {
	// Order lists task IDs in execution order.
	Order []int
	// CheckpointAfter[i] reports whether a checkpoint is taken after the
	// task at position i of Order.
	CheckpointAfter []bool
}

// ErrBadPlan is wrapped by every plan-validation failure.
var ErrBadPlan = errors.New("core: invalid plan")

// NewPlan builds a plan with checkpoints at exactly the given positions
// (the final position is added automatically).
func NewPlan(order []int, checkpointPositions ...int) (Plan, error) {
	p := Plan{Order: append([]int(nil), order...), CheckpointAfter: make([]bool, len(order))}
	if len(order) == 0 {
		return Plan{}, fmt.Errorf("%w: empty order", ErrBadPlan)
	}
	for _, pos := range checkpointPositions {
		if pos < 0 || pos >= len(order) {
			return Plan{}, fmt.Errorf("%w: checkpoint position %d out of range [0, %d)", ErrBadPlan, pos, len(order))
		}
		p.CheckpointAfter[pos] = true
	}
	p.CheckpointAfter[len(order)-1] = true
	return p, nil
}

// Checkpoints returns the positions (indices into Order) after which a
// checkpoint is taken, in increasing order.
func (p Plan) Checkpoints() []int {
	return checkpointPositions(p.CheckpointAfter)
}

// checkpointPositions converts a checkpoint vector to its positions, in
// increasing order, with a single exactly-sized allocation. It is the
// shared implementation behind Plan.Checkpoints and
// ChainResult.Positions.
func checkpointPositions(checkpointAfter []bool) []int {
	n := 0
	for _, ck := range checkpointAfter {
		if ck {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i, ck := range checkpointAfter {
		if ck {
			out = append(out, i)
		}
	}
	return out
}

// NumCheckpoints returns the number of checkpoints in the plan.
func (p Plan) NumCheckpoints() int {
	n := 0
	for _, ck := range p.CheckpointAfter {
		if ck {
			n++
		}
	}
	return n
}

// Validate checks internal consistency and, when g is non-nil, that Order
// is a permutation of g's tasks respecting every dependence.
func (p Plan) Validate(g *dag.Graph) error {
	if len(p.Order) == 0 {
		return fmt.Errorf("%w: empty order", ErrBadPlan)
	}
	if len(p.CheckpointAfter) != len(p.Order) {
		return fmt.Errorf("%w: order has %d positions but checkpoint vector has %d", ErrBadPlan, len(p.Order), len(p.CheckpointAfter))
	}
	if !p.CheckpointAfter[len(p.Order)-1] {
		return fmt.Errorf("%w: final position must carry a checkpoint (give the last task C=0 to make it free)", ErrBadPlan)
	}
	if g == nil {
		return nil
	}
	if len(p.Order) != g.Len() {
		return fmt.Errorf("%w: order has %d tasks, graph has %d", ErrBadPlan, len(p.Order), g.Len())
	}
	pos := make(map[int]int, len(p.Order))
	for i, id := range p.Order {
		if id < 0 || id >= g.Len() {
			return fmt.Errorf("%w: task id %d out of range", ErrBadPlan, id)
		}
		if _, dup := pos[id]; dup {
			return fmt.Errorf("%w: task %d appears twice", ErrBadPlan, id)
		}
		pos[id] = i
	}
	for id := 0; id < g.Len(); id++ {
		for _, s := range g.Successors(id) {
			if pos[s] < pos[id] {
				return fmt.Errorf("%w: dependence %d → %d violated (positions %d, %d)", ErrBadPlan, id, s, pos[id], pos[s])
			}
		}
	}
	return nil
}

// Segment is a maximal run of consecutive positions ended by a checkpoint.
type Segment struct {
	// Start and End are inclusive position indices into the plan order.
	Start, End int
	// Work is the summed weight of the segment's tasks.
	Work float64
	// Checkpoint is the cost of the checkpoint closing the segment.
	Checkpoint float64
	// Recovery is the cost of re-reaching the segment's starting state
	// after a failure within the segment.
	Recovery float64
}

// ChainProblem is the positional form every solver works on: after the DAG
// has been linearized (or when it is a chain to begin with), position i
// carries a weight, the cost of checkpointing right after it, and the cost
// of recovering from that checkpoint.
type ChainProblem struct {
	// Weights[i] is the work at position i.
	Weights []float64
	// Ckpt[i] is C at position i: the cost of a checkpoint taken after i.
	Ckpt []float64
	// Rec[i] is R at position i: the recovery cost when the most recent
	// checkpoint was taken after position i.
	Rec []float64
	// InitialRecovery is R₀: the cost of restarting from the initial
	// state when a failure strikes before the first checkpoint. The paper
	// leaves it implicit (R_{x−1} with x = 1); 0 models free re-entry.
	InitialRecovery float64
	// Model carries λ and D.
	Model expectation.Model
}

// NewChainProblem builds the positional problem for a graph that is a
// linear chain, in chain order.
func NewChainProblem(g *dag.Graph, m expectation.Model, initialRecovery float64) (*ChainProblem, []int, error) {
	order, ok := g.IsLinearChain()
	if !ok {
		return nil, nil, errors.New("core: graph is not a linear chain")
	}
	cp, err := NewChainProblemOrdered(g, order, m, initialRecovery)
	return cp, order, err
}

// NewChainProblemOrdered builds the positional problem for an explicit
// linearization of g, using the paper's base cost model: the checkpoint
// after position i costs C of the task at that position, and recovery from
// it costs that task's R.
func NewChainProblemOrdered(g *dag.Graph, order []int, m expectation.Model, initialRecovery float64) (*ChainProblem, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if initialRecovery < 0 {
		return nil, fmt.Errorf("core: negative initial recovery %v", initialRecovery)
	}
	n := len(order)
	cp := &ChainProblem{
		Weights:         make([]float64, n),
		Ckpt:            make([]float64, n),
		Rec:             make([]float64, n),
		InitialRecovery: initialRecovery,
		Model:           m,
	}
	for i, id := range order {
		t := g.Task(id)
		cp.Weights[i] = t.Weight
		cp.Ckpt[i] = t.Checkpoint
		cp.Rec[i] = t.Recovery
	}
	return cp, nil
}

// Len returns the number of positions.
func (cp *ChainProblem) Len() int { return len(cp.Weights) }

// Validate checks the positional arrays.
func (cp *ChainProblem) Validate() error {
	n := len(cp.Weights)
	if n == 0 {
		return errors.New("core: empty chain problem")
	}
	if len(cp.Ckpt) != n || len(cp.Rec) != n {
		return fmt.Errorf("core: inconsistent array lengths (%d, %d, %d)", n, len(cp.Ckpt), len(cp.Rec))
	}
	for i := 0; i < n; i++ {
		if cp.Weights[i] < 0 || cp.Ckpt[i] < 0 || cp.Rec[i] < 0 {
			return fmt.Errorf("core: negative parameter at position %d", i)
		}
	}
	if cp.InitialRecovery < 0 {
		return errors.New("core: negative initial recovery")
	}
	return cp.Model.Validate()
}

// recoveryBefore returns the recovery cost of the checkpoint preceding
// position x: R₀ for x = 0, otherwise Rec[x−1].
func (cp *ChainProblem) recoveryBefore(x int) float64 {
	if x == 0 {
		return cp.InitialRecovery
	}
	return cp.Rec[x-1]
}

// SegmentExpectation returns the exact expected time (Proposition 1) of
// executing positions [start, end] and checkpointing after end, given that
// the previous checkpoint is the one preceding start.
func (cp *ChainProblem) SegmentExpectation(start, end int) float64 {
	var w float64
	for i := start; i <= end; i++ {
		w += cp.Weights[i]
	}
	return cp.Model.ExpectedTime(w, cp.Ckpt[end], cp.recoveryBefore(start))
}

// Segments splits the positions according to the checkpoint vector.
func (cp *ChainProblem) Segments(checkpointAfter []bool) ([]Segment, error) {
	n := cp.Len()
	if len(checkpointAfter) != n {
		return nil, fmt.Errorf("%w: checkpoint vector length %d, want %d", ErrBadPlan, len(checkpointAfter), n)
	}
	if !checkpointAfter[n-1] {
		return nil, fmt.Errorf("%w: final position must carry a checkpoint", ErrBadPlan)
	}
	var segs []Segment
	start := 0
	for i := 0; i < n; i++ {
		if !checkpointAfter[i] {
			continue
		}
		seg := Segment{Start: start, End: i, Checkpoint: cp.Ckpt[i], Recovery: cp.recoveryBefore(start)}
		for j := start; j <= i; j++ {
			seg.Work += cp.Weights[j]
		}
		segs = append(segs, seg)
		start = i + 1
	}
	return segs, nil
}

// Makespan returns the exact expected makespan of the checkpoint vector:
// the sum of Proposition 1 over segments (the checkpointed state after
// each segment is a renewal point, so segment expectations add).
func (cp *ChainProblem) Makespan(checkpointAfter []bool) (float64, error) {
	segs, err := cp.Segments(checkpointAfter)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, s := range segs {
		total += cp.Model.ExpectedTime(s.Work, s.Checkpoint, s.Recovery)
	}
	return total, nil
}

// MakespanVariance returns the exact variance of the plan's makespan:
// checkpointed states are renewal points of the memoryless failure
// process, so segment durations are independent and variances add.
func (cp *ChainProblem) MakespanVariance(checkpointAfter []bool) (float64, error) {
	segs, err := cp.Segments(checkpointAfter)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, s := range segs {
		total += cp.Model.Variance(s.Work, s.Checkpoint, s.Recovery)
	}
	return total, nil
}

// FailureFreeMakespan returns the makespan of the checkpoint vector when
// no failure occurs: Σ w_i + Σ_{checkpointed i} C_i.
func (cp *ChainProblem) FailureFreeMakespan(checkpointAfter []bool) (float64, error) {
	if len(checkpointAfter) != cp.Len() {
		return 0, fmt.Errorf("%w: checkpoint vector length %d, want %d", ErrBadPlan, len(checkpointAfter), cp.Len())
	}
	var total float64
	for i, w := range cp.Weights {
		total += w
		if checkpointAfter[i] {
			total += cp.Ckpt[i]
		}
	}
	return total, nil
}

// EvaluatePlan returns the exact expected makespan of plan on graph g
// under model m, using the paper's base cost model (checkpoint/recovery
// cost of a segment boundary = the boundary task's C_i/R_i).
func EvaluatePlan(m expectation.Model, g *dag.Graph, plan Plan, initialRecovery float64) (float64, error) {
	if err := plan.Validate(g); err != nil {
		return 0, err
	}
	cp, err := NewChainProblemOrdered(g, plan.Order, m, initialRecovery)
	if err != nil {
		return 0, err
	}
	return cp.Makespan(plan.CheckpointAfter)
}

// boolsFromPositions converts checkpoint positions to a vector of length n
// with the final position forced true.
func boolsFromPositions(n int, positions []int) []bool {
	out := make([]bool, n)
	for _, p := range positions {
		out[p] = true
	}
	out[n-1] = true
	return out
}

// infinity is a shared +Inf for solver initializations.
var infinity = math.Inf(1)
