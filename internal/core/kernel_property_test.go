package core

import (
	"math"
	"testing"

	"repro/internal/expectation"
	"repro/internal/numeric"
	"repro/internal/rng"
)

// These property tests pin the kernel fast path of SolveChainDP to the
// reference solvers — SolveChainDPDense (the seed iterative loop),
// SolveChainDPRecursive (the paper's Algorithm 1 transcription), and
// BruteForceChain — on random chains covering the extreme regimes the
// kernel's stability contract names: λ(W+C) near and over
// numeric.MaxExpArg (+Inf semantics), λw ≪ 1 (the expm1 regime), and
// zero-weight / zero-cost tasks.

// randomChain draws a chain problem; zeroFrac is the probability that a
// weight or cost is exactly zero.
func randomChain(r *rng.Stream, n int, lambda, maxW, zeroFrac float64) *ChainProblem {
	cp := &ChainProblem{
		Weights:         make([]float64, n),
		Ckpt:            make([]float64, n),
		Rec:             make([]float64, n),
		InitialRecovery: r.Range(0, 1),
		Model:           expectation.Model{Lambda: lambda, Downtime: r.Range(0, 2)},
	}
	draw := func(lo, hi float64) float64 {
		if r.Float64() < zeroFrac {
			return 0
		}
		return r.Range(lo, hi)
	}
	for i := 0; i < n; i++ {
		cp.Weights[i] = draw(0, maxW)
		cp.Ckpt[i] = draw(0, maxW/5)
		cp.Rec[i] = draw(0, maxW/5)
	}
	return cp
}

// checkAgainst verifies the kernel result against a reference result.
// With bitExact (the dense reference, which shares the prefix-difference
// arithmetic), identical placements must give bit-identical Expected;
// otherwise (the recursive transcription computes its final singleton
// segment from the raw weight, an ulp apart from the prefix difference)
// ulp-scale agreement is required. Placements may legitimately differ
// only when both are optimal to within the kernel's error bound, in
// which case the Expected values and the reference evaluation of both
// placements must agree to ulp-scale relative error.
func checkAgainst(t *testing.T, tag string, cp *ChainProblem, kernel, ref ChainResult, bitExact bool) {
	t.Helper()
	samePlacement := true
	for i := range kernel.CheckpointAfter {
		if kernel.CheckpointAfter[i] != ref.CheckpointAfter[i] {
			samePlacement = false
			break
		}
	}
	if samePlacement && bitExact {
		if kernel.Expected != ref.Expected && !(math.IsNaN(kernel.Expected) && math.IsNaN(ref.Expected)) {
			t.Fatalf("%s: same placement but Expected %v vs %v", tag, kernel.Expected, ref.Expected)
		}
		return
	}
	if samePlacement {
		// The recursive transcription derives its final singleton segment
		// from the raw weight where the references difference prefix
		// sums; the cancellation gap is a few ulps of the prefix
		// magnitude, and an ulp in an exp argument amplifies to arg·ε
		// relative in the value — so tolerate a handful of ulps of
		// λ·P(n) on top of the flat ulp-scale floor.
		var sumW float64
		for _, w := range cp.Weights {
			sumW += w
		}
		tol := 2e-13 + 8*cp.Model.Lambda*sumW*0x1p-52
		if kernel.Expected == ref.Expected || numeric.RelErr(kernel.Expected, ref.Expected) <= tol {
			return
		}
		t.Fatalf("%s: same placement but Expected %v vs %v", tag, kernel.Expected, ref.Expected)
	}
	const tol = 1e-11
	if math.IsInf(ref.Expected, 1) || math.IsInf(kernel.Expected, 1) {
		// Near the overflow boundary two huge placements can straddle
		// +Inf; both evaluations must at least be astronomically large.
		if !(kernel.Expected > 1e290 && ref.Expected > 1e290) {
			t.Fatalf("%s: placements differ with Expected %v vs %v", tag, kernel.Expected, ref.Expected)
		}
		return
	}
	if numeric.RelErr(kernel.Expected, ref.Expected) > tol {
		t.Fatalf("%s: placements differ and Expected %v vs %v (rel %v)", tag, kernel.Expected, ref.Expected, numeric.RelErr(kernel.Expected, ref.Expected))
	}
	// Both placements must evaluate as optimal under the reference
	// arithmetic too.
	ek, err := cp.Makespan(kernel.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	er, err := cp.Makespan(ref.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(ek, er) > tol {
		t.Fatalf("%s: placements evaluate to %v vs %v", tag, ek, er)
	}
}

func TestKernelDPEquivalenceRandom(t *testing.T) {
	r := rng.New(101)
	lambdas := []float64{1e-9, 1e-6, 1e-3, 0.02, 0.3, 2}
	for trial := 0; trial < 60; trial++ {
		lambda := lambdas[trial%len(lambdas)]
		n := 1 + int(r.Uint64()%40)
		cp := randomChain(r, n, lambda, 10, 0.1)
		kernel, err := SolveChainDP(cp)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := SolveChainDPDense(cp)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := SolveChainDPRecursive(cp)
		if err != nil {
			t.Fatal(err)
		}
		checkAgainst(t, "vs dense", cp, kernel, dense, true)
		checkAgainst(t, "vs recursive", cp, kernel, rec, false)
	}
}

func TestKernelDPEquivalenceBruteForce(t *testing.T) {
	r := rng.New(202)
	for trial := 0; trial < 40; trial++ {
		lambda := []float64{1e-8, 1e-3, 0.1, 1}[trial%4]
		n := 2 + int(r.Uint64()%9)
		cp := randomChain(r, n, lambda, 8, 0.15)
		kernel, err := SolveChainDP(cp)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForceChain(cp)
		if err != nil {
			t.Fatal(err)
		}
		// The DP and the enumeration must agree on the optimal value.
		if numeric.RelErr(kernel.Expected, bf.Expected) > 1e-11 {
			t.Fatalf("n=%d λ=%v: kernel %v vs brute force %v", n, lambda, kernel.Expected, bf.Expected)
		}
	}
}

// TestKernelDPOverflowRegime drives λ(W+C) across numeric.MaxExpArg:
// whole-chain segments overflow to +Inf while short segments stay
// finite, and near the boundary the kernel must agree with the dense
// reference on which plans are representable.
func TestKernelDPOverflowRegime(t *testing.T) {
	r := rng.New(303)
	for trial := 0; trial < 30; trial++ {
		n := 4 + int(r.Uint64()%12)
		// Scale total work to put λ·(W_total+C) in [0.5·709, 2·709].
		cp := randomChain(r, n, 1, 10, 0.05)
		var total float64
		for _, w := range cp.Weights {
			total += w
		}
		if total == 0 {
			continue
		}
		target := numeric.MaxExpArg * (0.5 + 1.5*r.Float64())
		scale := target / total
		for i := range cp.Weights {
			cp.Weights[i] *= scale
		}
		kernel, err := SolveChainDP(cp)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := SolveChainDPDense(cp)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(dense.Expected, 1) != math.IsInf(kernel.Expected, 1) {
			// Disagreement is only legal if both are astronomically large
			// (the boundary itself can differ by an ulp between paths).
			if !(kernel.Expected > 1e290 || dense.Expected > 1e290) {
				t.Fatalf("overflow classification differs: kernel %v, dense %v", kernel.Expected, dense.Expected)
			}
			continue
		}
		checkAgainst(t, "overflow regime", cp, kernel, dense, true)
	}
}

// TestKernelDPTinyLambda pins the expm1 regime λw ≪ 1, where every
// transition takes the stable path and results must be bit-identical to
// the dense reference.
func TestKernelDPTinyLambda(t *testing.T) {
	r := rng.New(404)
	for trial := 0; trial < 20; trial++ {
		n := 1 + int(r.Uint64()%30)
		cp := randomChain(r, n, 1e-12, 5, 0.1)
		kernel, err := SolveChainDP(cp)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := SolveChainDPDense(cp)
		if err != nil {
			t.Fatal(err)
		}
		for i := range kernel.CheckpointAfter {
			if kernel.CheckpointAfter[i] != dense.CheckpointAfter[i] {
				t.Fatalf("expm1 regime: placements differ at %d", i)
			}
		}
		if kernel.Expected != dense.Expected {
			t.Fatalf("expm1 regime: Expected %v vs %v", kernel.Expected, dense.Expected)
		}
	}
}

// TestKernelDPDegenerate covers all-zero chains and single positions.
func TestKernelDPDegenerate(t *testing.T) {
	m := expectation.Model{Lambda: 0.1, Downtime: 1}
	cp := &ChainProblem{
		Weights: make([]float64, 6),
		Ckpt:    make([]float64, 6),
		Rec:     make([]float64, 6),
		Model:   m,
	}
	kernel, err := SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	if kernel.Expected != 0 {
		t.Errorf("all-zero chain: Expected = %v, want 0", kernel.Expected)
	}
	one := &ChainProblem{Weights: []float64{3}, Ckpt: []float64{1}, Rec: []float64{1}, Model: m}
	kernel, err = SolveChainDP(one)
	if err != nil {
		t.Fatal(err)
	}
	if want := m.ExpectedTime(3, 1, 0); kernel.Expected != want {
		t.Errorf("single position: Expected = %v, want %v", kernel.Expected, want)
	}
}

// TestBoundedDPKernelEquivalence pins the kernelized bounded solver to
// an unpruned reference computed inline.
func TestBoundedDPKernelEquivalence(t *testing.T) {
	r := rng.New(505)
	for trial := 0; trial < 25; trial++ {
		lambda := []float64{1e-6, 0.02, 0.5}[trial%3]
		n := 2 + int(r.Uint64()%14)
		cp := randomChain(r, n, lambda, 8, 0.1)
		for budget := 1; budget <= n; budget += 1 + n/4 {
			got, err := SolveChainDPBounded(cp, budget)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: unrestricted brute force over placements with at
			// most `budget` checkpoints (small n keeps this tractable).
			bestE := math.Inf(1)
			ck := make([]bool, n)
			ck[n-1] = true
			for mask := 0; mask < 1<<(n-1); mask++ {
				cnt := 1
				for i := 0; i < n-1; i++ {
					ck[i] = mask&(1<<i) != 0
					if ck[i] {
						cnt++
					}
				}
				if cnt > budget {
					continue
				}
				e, err := cp.Makespan(ck)
				if err != nil {
					t.Fatal(err)
				}
				if e < bestE {
					bestE = e
				}
			}
			if math.IsInf(bestE, 1) && math.IsInf(got.Expected, 1) {
				continue
			}
			if numeric.RelErr(got.Expected, bestE) > 1e-11 {
				t.Fatalf("n=%d budget=%d: bounded DP %v vs brute force %v", n, budget, got.Expected, bestE)
			}
			if nCk := len(got.Positions()); nCk > budget {
				t.Fatalf("budget %d exceeded: %d checkpoints", budget, nCk)
			}
		}
	}
}
