package core

import (
	"math"
	"testing"

	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/numeric"
	"repro/internal/rng"
)

// randomSmallGraph draws one of the generator families at an
// exhaustively solvable size.
func randomSmallGraph(t *testing.T, r *rng.Stream) *dag.Graph {
	t.Helper()
	var g *dag.Graph
	var err error
	switch r.IntN(5) {
	case 0:
		g, err = dag.Chain(2+r.IntN(6), dag.DefaultWeights(), r)
	case 1:
		g, err = dag.ForkJoin(2, 2, dag.DefaultWeights(), r)
	case 2:
		g, err = dag.GNP(4+r.IntN(4), 0.15+0.5*r.Float64(), dag.DefaultWeights(), r)
	case 3:
		g, err = dag.IntreeFromChains(2+r.IntN(2), 1+r.IntN(2), dag.DefaultWeights(), r)
	default:
		g, err = dag.Independent(2+r.IntN(4), dag.DefaultWeights(), r)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLatticeMatchesExhaustiveProperty is the acceptance pin: on
// randomized small DAGs across both order-free cost models, the
// lattice DP returns a bit-identical optimum to the streaming
// factorial oracle, plus a valid witness order whose own per-order DP
// reproduces the optimum.
func TestLatticeMatchesExhaustiveProperty(t *testing.T) {
	r := rng.New(71)
	models := []expectation.Model{
		{Lambda: 0.003, Downtime: 0.2},
		{Lambda: 0.05, Downtime: 1},
		{Lambda: 0.4, Downtime: 0},
	}
	for trial := 0; trial < 60; trial++ {
		g := randomSmallGraph(t, r)
		m := models[trial%len(models)]
		r0 := 0.0
		if trial%2 == 1 {
			r0 = r.Range(0, 2)
		}
		for _, cm := range []CostModel{LastTaskCosts{R0: r0}, LiveSetCosts{R0: r0}} {
			exact, err := SolveDAGExhaustive(g, m, cm, 0)
			if err != nil {
				t.Fatalf("trial %d %s: exhaustive: %v", trial, cm.Name(), err)
			}
			lattice, err := SolveDAGLattice(g, m, cm, Options{})
			if err != nil {
				t.Fatalf("trial %d %s: lattice: %v", trial, cm.Name(), err)
			}
			if lattice.Expected != exact.Expected {
				t.Fatalf("trial %d %s (n=%d, λ=%g): lattice %.17g ≠ exhaustive %.17g",
					trial, cm.Name(), g.Len(), m.Lambda, lattice.Expected, exact.Expected)
			}
			if err := lattice.Plan().Validate(g); err != nil {
				t.Fatalf("trial %d %s: invalid witness: %v", trial, cm.Name(), err)
			}
			// The witness order's own optimal placement cannot beat the
			// global optimum, and the lattice's placement on that order is
			// optimal for it — so the per-order DP must agree to rounding.
			onWitness, err := SolveOrderDP(g, lattice.Order, m, cm)
			if err != nil {
				t.Fatal(err)
			}
			if numeric.RelErr(onWitness.Expected, lattice.Expected) > 1e-11 {
				t.Fatalf("trial %d %s: witness order DP %v vs lattice %v",
					trial, cm.Name(), onWitness.Expected, lattice.Expected)
			}
			// And the heuristic portfolio never beats the exact optimum.
			heur, err := SolveDAG(g, m, cm, nil)
			if err != nil {
				t.Fatal(err)
			}
			if lattice.Expected > heur.Expected*(1+1e-12) {
				t.Fatalf("trial %d %s: lattice %v worse than portfolio %v",
					trial, cm.Name(), lattice.Expected, heur.Expected)
			}
		}
	}
}

// TestLatticeChainDegenerate pins the chain special case against the
// Proposition 3 chain DP: one linearization, so the lattice value must
// match SolveChainDP to rounding and the placement must be identical.
func TestLatticeChainDegenerate(t *testing.T) {
	r := rng.New(72)
	for _, n := range []int{1, 2, 7, 16} {
		g, err := dag.Chain(n, dag.DefaultWeights(), r)
		if err != nil {
			t.Fatal(err)
		}
		m := mustModelT(t, 0.04, 0.5)
		cp, order, err := NewChainProblem(g, m, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		chainRes, err := SolveChainDP(cp)
		if err != nil {
			t.Fatal(err)
		}
		lattice, err := SolveDAGLattice(g, m, LastTaskCosts{R0: 0.7}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if numeric.RelErr(lattice.Expected, chainRes.Expected) > 1e-12 {
			t.Fatalf("n=%d: lattice %v vs chain DP %v", n, lattice.Expected, chainRes.Expected)
		}
		for i := range order {
			if lattice.Order[i] != order[i] {
				t.Fatalf("n=%d: lattice order %v is not the chain", n, lattice.Order)
			}
			if lattice.CheckpointAfter[i] != chainRes.CheckpointAfter[i] {
				t.Fatalf("n=%d: placements differ at %d: %v vs %v",
					n, i, lattice.CheckpointAfter, chainRes.CheckpointAfter)
			}
		}
	}
}

// TestLatticeWorkerInvariance pins the determinism contract: value,
// witness, and statistics are identical for every worker count, with
// and without the incumbent.
func TestLatticeWorkerInvariance(t *testing.T) {
	r := rng.New(73)
	g, err := dag.GNP(10, 0.3, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	m := mustModelT(t, 0.02, 0.5)
	for _, cm := range []CostModel{LastTaskCosts{}, LiveSetCosts{}} {
		for _, noInc := range []bool{false, true} {
			base, baseStats, err := SolveDAGLatticeStats(g, m, cm, Options{Workers: 1, NoIncumbent: noInc})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 5} {
				res, stats, err := SolveDAGLatticeStats(g, m, cm, Options{Workers: workers, NoIncumbent: noInc})
				if err != nil {
					t.Fatal(err)
				}
				if res.Expected != base.Expected {
					t.Errorf("%s workers=%d noInc=%v: value %v ≠ serial %v",
						cm.Name(), workers, noInc, res.Expected, base.Expected)
				}
				if stats != baseStats {
					t.Errorf("%s workers=%d noInc=%v: stats %+v ≠ serial %+v",
						cm.Name(), workers, noInc, stats, baseStats)
				}
				for i := range base.Order {
					if res.Order[i] != base.Order[i] || res.CheckpointAfter[i] != base.CheckpointAfter[i] {
						t.Fatalf("%s workers=%d: witness differs", cm.Name(), workers)
					}
				}
			}
			if noInc && base.Expected != func() float64 {
				inc, _, err := SolveDAGLatticeStats(g, m, cm, Options{})
				if err != nil {
					t.Fatal(err)
				}
				return inc.Expected
			}() {
				t.Errorf("%s: pruned and unpruned optima differ", cm.Name())
			}
		}
	}
}

// TestLatticePruningEffectiveAndSound: the incumbent-seeded search must
// expand no more states than the unpruned one and return the same
// value.
func TestLatticePruningEffectiveAndSound(t *testing.T) {
	r := rng.New(74)
	g, err := dag.IntreeFromChains(3, 4, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	m := mustModelT(t, 0.01, 0.3)
	full, fullStats, err := SolveDAGLatticeStats(g, m, LastTaskCosts{}, Options{NoIncumbent: true})
	if err != nil {
		t.Fatal(err)
	}
	pruned, prunedStats, err := SolveDAGLatticeStats(g, m, LastTaskCosts{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Expected != pruned.Expected {
		t.Fatalf("pruning changed the optimum: %v vs %v", full.Expected, pruned.Expected)
	}
	if prunedStats.Transitions > fullStats.Transitions {
		t.Errorf("pruned search evaluated more transitions (%d) than unpruned (%d)",
			prunedStats.Transitions, fullStats.Transitions)
	}
	if prunedStats.Incumbent <= 0 {
		t.Errorf("incumbent not recorded: %+v", prunedStats)
	}
}

// TestLatticeStateSpaceVsFactorial spot-checks the whole point: on an
// in-tree the lattice stores exponentially fewer states than there are
// linearizations.
func TestLatticeStateSpaceVsFactorial(t *testing.T) {
	g, err := dag.IntreeFromChains(3, 4, dag.DefaultWeights(), rng.New(75))
	if err != nil {
		t.Fatal(err)
	}
	lat, err := g.Lattice()
	if err != nil {
		t.Fatal(err)
	}
	orders := lat.CountLinearExtensions()
	_, stats, err := SolveDAGLatticeStats(g, mustModelT(t, 0.02, 0.5), LastTaskCosts{}, Options{NoIncumbent: true})
	if err != nil {
		t.Fatal(err)
	}
	if float64(stats.States)*100 > orders {
		t.Errorf("states %d not ≪ linear extensions %.0f", stats.States, orders)
	}
}

// TestLatticeInfiniteOptimum pins the overflow regime: when every
// schedule's expectation overflows to +Inf (λ·W past numeric.MaxExpArg),
// the lattice solver must still return a valid witness with Expected
// +Inf — matching the oracle, which reports +Inf with no improving
// order — instead of pruning everything away or rewriting +Inf to 0.
func TestLatticeInfiniteOptimum(t *testing.T) {
	g := dag.New()
	a := g.MustAddTask(dag.Task{Weight: 1e5, Checkpoint: 1, Recovery: 1})
	b := g.MustAddTask(dag.Task{Weight: 2e5, Checkpoint: 1, Recovery: 1})
	g.MustAddEdge(a, b)
	m := mustModelT(t, 0.02, 1) // λ·W ≈ 2000 ≫ MaxExpArg
	for _, cm := range []CostModel{LastTaskCosts{}, LiveSetCosts{}} {
		exact, err := SolveDAGExhaustive(g, m, cm, 0)
		if err != nil {
			t.Fatalf("%s: exhaustive: %v", cm.Name(), err)
		}
		if !math.IsInf(exact.Expected, 1) {
			t.Fatalf("%s: exhaustive optimum = %v, want +Inf", cm.Name(), exact.Expected)
		}
		for _, noInc := range []bool{false, true} {
			lattice, err := SolveDAGLattice(g, m, cm, Options{NoIncumbent: noInc})
			if err != nil {
				t.Fatalf("%s noInc=%v: lattice: %v", cm.Name(), noInc, err)
			}
			if !math.IsInf(lattice.Expected, 1) {
				t.Errorf("%s noInc=%v: lattice optimum = %v, want +Inf", cm.Name(), noInc, lattice.Expected)
			}
			if err := lattice.Plan().Validate(g); err != nil {
				t.Errorf("%s noInc=%v: witness invalid: %v", cm.Name(), noInc, err)
			}
		}
	}
}

// TestLatticeGuards covers the error surface: unsupported cost models,
// empty and oversized graphs, and the state budget.
func TestLatticeGuards(t *testing.T) {
	m := mustModelT(t, 0.05, 0)
	if _, err := SolveDAGLattice(dag.New(), m, LastTaskCosts{}, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
	g, err := dag.Chain(4, dag.DefaultWeights(), rng.New(76))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveDAGLattice(g, m, fixedCosts{}, Options{}); err == nil {
		t.Error("order-dependent cost model accepted")
	}
	big, err := dag.Independent(65, dag.DefaultWeights(), rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveDAGLattice(big, m, LastTaskCosts{}, Options{}); err == nil {
		t.Error("65-task graph accepted")
	}
	wide, err := dag.Independent(12, dag.DefaultWeights(), rng.New(78))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveDAGLattice(wide, m, LastTaskCosts{}, Options{MaxStates: 50, NoIncumbent: true}); err == nil {
		t.Error("state budget not enforced")
	}
}

// fixedCosts is a deliberately order-dependent cost model for the guard
// test.
type fixedCosts struct{}

func (fixedCosts) CheckpointCost(g *dag.Graph, order []int, start, end int) float64 { return 1 }
func (fixedCosts) RecoveryCost(g *dag.Graph, order []int, end int) float64          { return 1 }
func (fixedCosts) InitialRecovery() float64                                         { return 0 }
func (fixedCosts) Name() string                                                     { return "fixed" }

// TestSolveDAGWithParallelMatchesSerial pins the parallel portfolio
// against the serial one bit-for-bit, including the strategy label.
func TestSolveDAGWithParallelMatchesSerial(t *testing.T) {
	r := rng.New(79)
	g, err := dag.Layered(4, 4, 0.4, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	m := mustModelT(t, 0.02, 1)
	for _, cm := range []CostModel{LastTaskCosts{}, LiveSetCosts{}} {
		serial, err := SolveDAG(g, m, cm, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := SolveDAGWith(g, m, cm, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if par.Expected != serial.Expected || par.Strategy != serial.Strategy {
				t.Errorf("%s workers=%d: (%v, %s) ≠ serial (%v, %s)",
					cm.Name(), workers, par.Expected, par.Strategy, serial.Expected, serial.Strategy)
			}
		}
	}
}

// TestExhaustiveStreamingMatchesLimit pins limit semantics after the
// streaming rewrite: limit 1 solves exactly the first enumerated
// order.
func TestExhaustiveStreamingMatchesLimit(t *testing.T) {
	g, err := dag.ForkJoin(2, 2, dag.DefaultWeights(), rng.New(80))
	if err != nil {
		t.Fatal(err)
	}
	m := mustModelT(t, 0.05, 0.1)
	first := g.AllTopologicalOrders(1)[0]
	limited, err := SolveDAGExhaustive(g, m, LastTaskCosts{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SolveOrderDP(g, first, m, LastTaskCosts{})
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(limited.Expected, direct.Expected) > 1e-12 {
		t.Errorf("limit-1 exhaustive %v ≠ first-order DP %v", limited.Expected, direct.Expected)
	}
	if math.IsInf(limited.Expected, 1) {
		t.Error("degenerate limited solve")
	}
}
