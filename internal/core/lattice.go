package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/expectation"
)

// This file implements the exact DAG checkpoint scheduler over the
// downset (order-ideal) lattice, replacing the factorial
// enumerate-every-linearization oracle as the workhorse exact arm.
//
// The key structural fact: for the paper's order-free cost models the
// value of a schedule depends on the linearization only through its
// *checkpointed prefixes*. A schedule is a chain of downsets
// ∅ = D₀ ⊂ D₁ ⊂ … ⊂ D_k = V (one per checkpoint), and each segment
// Dᵢ₋₁ → Dᵢ contributes the Proposition 1 expectation
//
//	E = e^{λ·rec(Dᵢ₋₁)} (1/λ + D) (e^{λ(W(Dᵢ∖Dᵢ₋₁) + C(Dᵢ))} − 1)
//
// whose terms are all order-free: the work W is a set sum; under
// LastTaskCosts C and rec are the costs of the segment's last task
// (any maximal task of Dᵢ); under LiveSetCosts C and rec are sums over
// the live tasks of Dᵢ — a function of the set alone. Minimizing over
// linearizations therefore equals minimizing over downset chains, and
// a DP over lattice states is exact, not heuristic. States are
// (downset, last task) pairs for LastTaskCosts — the recovery in force
// depends on the last executed task — and bare downsets for
// LiveSetCosts. The state space is the lattice (≤ 2ⁿ, typically far
// smaller: n+1 for a chain), against the n! orders the previous
// exhaustive solver enumerated.
//
// Search is branch-and-bound: the SolveDAG portfolio incumbent seeds
// an upper bound, and a state (or a whole DFS subtree of segment
// extensions) is discarded when its value plus an admissible
// failure-free lower bound — remaining work plus the cheapest possible
// final checkpoint, both underestimates of any completion — already
// exceeds the incumbent beyond the kernel slack. Transitions are
// evaluated through expectation.SetKernel, the set-state sibling of
// the positional segment kernel: zero transcendental calls per
// candidate under LastTaskCosts, one expm1 under LiveSetCosts.
// Expansion parallelizes across the states of a level (the engine
// worker-pool idiom); per-worker candidate tables merge with a
// deterministic tie-break, so results and statistics are bit-identical
// for every worker count. Expanded levels retire to compact sorted
// arrays — enough to reconstruct the witness chain — so the live hash
// tables only ever hold the unexpanded frontier.

// latKey identifies one lattice DP state: the checkpointed downset
// plus, for cost models whose recovery depends on it, the task the
// last segment ended with (−1 when untracked and at the root).
type latKey struct {
	d    uint64
	last int16
}

// latVal is a state's best-known accumulated expectation and the
// predecessor state achieving it.
type latVal struct {
	f      float64
	parent latKey
}

// latRecord is a retired state: key and parent, value dropped.
type latRecord struct {
	key    latKey
	parent latKey
}

func keyLess(a, b latKey) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.last < b.last
}

// better reports whether v should replace cur in a state table: lower
// value, or an exact value tie broken toward the smaller parent key —
// a total order independent of arrival order, which is what makes
// parallel expansion deterministic. relax and relaxLocal must share
// this predicate or multi-worker merges could disagree with serial
// runs.
func better(v, cur latVal) bool {
	return v.f < cur.f || (v.f == cur.f && keyLess(v.parent, cur.parent))
}

// relax lowers the table entry for k to v if v improves it.
func relax(table map[latKey]latVal, k latKey, v latVal) {
	if cur, ok := table[k]; !ok || better(v, cur) {
		table[k] = v
	}
}

// LatticeStats reports how much work the lattice solver did.
type LatticeStats struct {
	// States is the number of DP states stored over the whole run —
	// (downset, last) pairs under LastTaskCosts, downsets under
	// LiveSetCosts. Compare against the graph's linear-extension count.
	States int64
	// Expanded counts states whose outgoing segments were enumerated;
	// PrunedStates counts states discarded whole by the bound.
	Expanded, PrunedStates int64
	// PrunedSubtrees counts segment-DFS subtrees cut by the bound.
	PrunedSubtrees int64
	// Transitions counts segment candidates evaluated.
	Transitions int64
	// Incumbent is the portfolio upper bound that seeded the
	// branch-and-bound (0 when Options.NoIncumbent).
	Incumbent float64
}

// chainSegment is one checkpointed segment of a downset chain: the
// executed sets before and after, and the task the segment ends with
// (meaningful under LastTaskCosts; under LiveSetCosts it is carried
// for the witness order only).
type chainSegment struct {
	prev, cur uint64
	last      int
}

// SolveDAGLattice computes the globally optimal linearization-plus-
// placement schedule of a DAG under an order-free cost model
// (LastTaskCosts or LiveSetCosts) by dynamic programming over the
// downset lattice. It returns the same optimum as SolveDAGExhaustive —
// bit-identical, both report through downsetChainValue — at a cost of
// O(states · segments) instead of O(n! · n²). Graphs beyond
// dag.MaxLatticeTasks tasks or cost models with order-dependent costs
// are rejected.
func SolveDAGLattice(g *dag.Graph, m expectation.Model, cm CostModel, opts Options) (DAGResult, error) {
	res, _, err := SolveDAGLatticeStats(g, m, cm, opts)
	return res, err
}

// SolveDAGLatticeStats is SolveDAGLattice, additionally reporting
// search statistics.
func SolveDAGLatticeStats(g *dag.Graph, m expectation.Model, cm CostModel, opts Options) (DAGResult, LatticeStats, error) {
	var stats LatticeStats
	if err := m.Validate(); err != nil {
		return DAGResult{}, stats, err
	}
	if g.Len() == 0 {
		return DAGResult{}, stats, fmt.Errorf("core: empty graph")
	}
	var liveSet bool
	var r0 float64
	switch model := cm.(type) {
	case LastTaskCosts:
		r0 = model.R0
	case LiveSetCosts:
		liveSet = true
		r0 = model.R0
	default:
		return DAGResult{}, stats, fmt.Errorf("core: lattice solver needs an order-free cost model (last-task or live-set), got %s", cm.Name())
	}
	lat, err := g.Lattice()
	if err != nil {
		return DAGResult{}, stats, err
	}
	if err := g.Validate(); err != nil {
		return DAGResult{}, stats, err
	}

	n := g.Len()
	weights := make([]float64, n)
	ckpt := make([]float64, n)
	rcov := make([]float64, n)
	totalW := 0.0
	for i := 0; i < n; i++ {
		t := g.Task(i)
		weights[i] = t.Weight
		ckpt[i] = t.Checkpoint
		rcov[i] = t.Recovery
		totalW += t.Weight
	}
	kern, err := expectation.NewSetKernel(m, weights, ckpt)
	if err != nil {
		return DAGResult{}, stats, err
	}
	// The admissible tail bound: remaining work (each unit of work costs
	// at least itself, failures or not) plus the cheapest checkpoint any
	// final segment can end with — the last task overall is a sink, and
	// a sink's checkpoint cost is charged under both cost models.
	minFinalC := math.Inf(1)
	for _, s := range g.Sinks() {
		if c := g.Task(s).Checkpoint; c < minFinalC {
			minFinalC = c
		}
	}

	ub := math.Inf(1)
	switch {
	case opts.IncumbentUB > 0:
		ub = opts.IncumbentUB
		stats.Incumbent = opts.IncumbentUB
	case !opts.NoIncumbent:
		inc, err := SolveDAGWith(g, m, cm, Options{Workers: opts.Workers, Strategies: opts.Strategies})
		if err != nil {
			return DAGResult{}, stats, err
		}
		ub = inc.Expected
		stats.Incumbent = inc.Expected
	}

	ls := &latticeSolver{
		kern:      kern,
		lat:       lat,
		weights:   weights,
		ckpt:      ckpt,
		rcov:      rcov,
		totalW:    totalW,
		minFinalC: minFinalC,
		liveSet:   liveSet,
		r0:        r0,
		ub:        ub,
		slack:     kern.Slack(),
	}
	ls.pred, ls.succ = lat.Masks()
	ls.topo = lat.Topo()

	best, retired, finals, err := ls.run(opts, &stats)
	if err != nil {
		return DAGResult{}, stats, err
	}
	segs := ls.reconstruct(best, retired, finals)
	order, ckv := ls.witness(segs)
	return DAGResult{
		Order:           order,
		CheckpointAfter: ckv,
		Expected:        downsetChainValue(g, m, cm, ls.succ, segs),
		Strategy:        "lattice",
	}, stats, nil
}

// latticeSolver carries the immutable per-solve tables of the DP, plus
// the cross-worker state-budget guard.
type latticeSolver struct {
	kern       *expectation.SetKernel
	lat        *dag.Lattice
	pred, succ []uint64
	topo       []int
	weights    []float64
	ckpt       []float64
	rcov       []float64
	totalW     float64
	minFinalC  float64
	liveSet    bool
	r0         float64
	ub         float64
	slack      float64

	// budget guards memory *during* expansion, not only at level
	// boundaries: a single level (the root expands every downset as a
	// first segment) can otherwise materialize the whole lattice before
	// the first exact check. cand counts this level's candidate-table
	// insertions across workers, charging only keys absent from the
	// global tables (read-only while workers run); a distinct new state
	// is then charged at most once per worker table, so candLimit —
	// (budget − stored) × workers, reset per level — can only trip when
	// the distinct new states genuinely exceed the remaining budget.
	// The exact per-level count in run() stays the authoritative test;
	// this guard bounds transient memory at workers× the cap.
	budget    int64
	candLimit int64
	levels    []map[latKey]latVal
	cand      atomic.Int64
	aborted   atomic.Bool
}

// relaxLocal is relax into a worker-private table, charging keys that
// are new to both the local and the global tables against the state
// budget.
func (ls *latticeSolver) relaxLocal(table map[latKey]latVal, k latKey, v latVal) {
	cur, ok := table[k]
	if !ok {
		if ls.budget > 0 {
			if _, stored := ls.levels[bits.OnesCount64(k.d)][k]; !stored {
				if ls.cand.Add(1) > ls.candLimit {
					ls.aborted.Store(true)
				}
			}
		}
		table[k] = v
		return
	}
	if better(v, cur) {
		table[k] = v
	}
}

// latCounters accumulates one worker's statistics for a level.
type latCounters struct {
	expanded, prunedStates, prunedSubtrees, transitions int64
}

// recoveryOf returns the recovery cost in force after checkpointing the
// state: R₀ at the root, the last task's recovery under the base
// model, the live-task recovery sum under the live-set model.
func (ls *latticeSolver) recoveryOf(key latKey) float64 {
	if key.d == 0 {
		return ls.r0
	}
	if !ls.liveSet {
		return ls.rcov[key.last]
	}
	var sum float64
	for rest := key.d; rest != 0; rest &= rest - 1 {
		t := bits.TrailingZeros64(rest)
		if ls.succ[t] == 0 || ls.succ[t]&^key.d != 0 {
			sum += ls.rcov[t]
		}
	}
	return sum
}

// maskWeight returns Σ w over the set.
func (ls *latticeSolver) maskWeight(s uint64) float64 {
	var sum float64
	for rest := s; rest != 0; rest &= rest - 1 {
		sum += ls.weights[bits.TrailingZeros64(rest)]
	}
	return sum
}

// expand enumerates every segment extending the state and relaxes the
// resulting candidate states into out. The segment DFS follows the
// lattice's duplicate-free topological-index order: each recursion
// level adds one ready task, so the work accumulator, the maximal-task
// set, and the live-set checkpoint cost all update incrementally and
// backtrack by value passing.
func (ls *latticeSolver) expand(key latKey, val latVal, out map[latKey]latVal, c *latCounters) {
	f := val.f
	wDone := ls.maskWeight(key.d)
	// With an infinite incumbent nothing may be pruned: +Inf ≥ +Inf
	// would otherwise discard every transition of instances whose true
	// optimum is +Inf (λ·(W+C) past the overflow threshold), which the
	// oracle solves to +Inf rather than erroring.
	ubInf := math.IsInf(ls.ub, 1)
	if !ubInf && f+(ls.totalW-wDone)+ls.minFinalC >= ls.ub*ls.slack {
		c.prunedStates++
		return
	}
	c.expanded++
	amp := ls.kern.Amp(ls.recoveryOf(key))
	n := len(ls.topo)
	wRem := ls.totalW - wDone

	var dfs func(dcur uint64, startIdx int, acc expectation.SetAccum, maxT uint64, ck float64)
	dfs = func(dcur uint64, startIdx int, acc expectation.SetAccum, maxT uint64, ck float64) {
		for idx := startIdx; idx < n; idx++ {
			if ls.aborted.Load() {
				return
			}
			t := ls.topo[idx]
			bit := uint64(1) << uint(t)
			if dcur&bit != 0 || ls.pred[t]&^dcur != 0 {
				continue
			}
			d2 := dcur | bit
			acc2 := ls.kern.Push(acc, t)
			// Subtree bound: the work-only segment term is a lower bound
			// on this segment under any checkpoint cost, it only grows as
			// the segment extends (its excess over the plain work W is
			// nondecreasing in W because λ·amp ≥ 1), and the tail still
			// needs the remaining work plus a final checkpoint. If that
			// already exceeds the incumbent, no descendant can improve it.
			if !ubInf && f+ls.kern.WorkOnly(acc2, amp)+(wRem-acc2.W)+ls.minFinalC >= ls.ub*ls.slack {
				c.prunedSubtrees++
				continue
			}
			if ls.liveSet {
				// The new task is always live at its own execution (its
				// successors cannot precede it); direct predecessors inside
				// the segment whose last successor was t retire.
				ck2 := ck + ls.ckpt[t]
				for rest := ls.pred[t] & (d2 &^ key.d); rest != 0; rest &= rest - 1 {
					u := bits.TrailingZeros64(rest)
					if ls.succ[u]&^d2 == 0 {
						ck2 -= ls.ckpt[u]
					}
				}
				c.transitions++
				ls.relaxLocal(out, latKey{d: d2, last: -1}, latVal{f: f + ls.kern.SegmentCost(acc2, amp, ck2), parent: key})
				dfs(d2, idx+1, acc2, 0, ck2)
			} else {
				// Maximal tasks of d2 inside the segment: adding t kills
				// the maximality of its direct predecessors.
				maxT2 := (maxT &^ ls.pred[t]) | bit
				for rest := maxT2; rest != 0; rest &= rest - 1 {
					j := bits.TrailingZeros64(rest)
					c.transitions++
					ls.relaxLocal(out, latKey{d: d2, last: int16(j)}, latVal{f: f + ls.kern.SegmentLast(acc2, amp, j), parent: key})
				}
				dfs(d2, idx+1, acc2, maxT2, ck)
			}
		}
	}
	dfs(key.d, 0, ls.kern.Empty(), 0, 0)
}

// run executes the level-ordered DP and returns the best final state,
// the retired per-level records, and the final-level table.
func (ls *latticeSolver) run(opts Options, stats *LatticeStats) (latKey, [][]latRecord, map[latKey]latVal, error) {
	n := len(ls.topo)
	ls.budget = opts.MaxStates
	workers := opts.workerCount()
	full := ls.lat.Full()
	root := latKey{d: 0, last: -1}
	levels := make([]map[latKey]latVal, n+1)
	levels[0] = map[latKey]latVal{root: {f: 0, parent: root}}
	ls.levels = levels
	retired := make([][]latRecord, n+1)
	stored := int64(1)

	for lvl := 0; lvl < n; lvl++ {
		cur := levels[lvl]
		if len(cur) == 0 {
			continue
		}
		keys := make([]latKey, 0, len(cur))
		for k := range cur {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })

		// Expand the level on the pool; workers collect candidates in
		// private tables so no relaxation races, then the tables merge
		// serially — min with a total-order tie-break is independent of
		// both the partition and the merge order.
		w := workers
		if w > len(keys) {
			w = len(keys)
		}
		if w < 1 {
			w = 1
		}
		if ls.budget > 0 {
			rem := ls.budget - stored
			if rem < 0 {
				rem = 0
			}
			ls.cand.Store(0)
			if rem > math.MaxInt64/int64(w) {
				ls.candLimit = math.MaxInt64
			} else {
				ls.candLimit = rem * int64(w)
			}
		}
		locals := make([]map[latKey]latVal, w)
		counters := make([]latCounters, w)
		runWorkers(w, len(keys), func(worker, i int) {
			if locals[worker] == nil {
				locals[worker] = make(map[latKey]latVal)
			}
			k := keys[i]
			ls.expand(k, cur[k], locals[worker], &counters[worker])
		})
		if ls.aborted.Load() {
			stats.States = stored
			return latKey{}, nil, nil, fmt.Errorf("core: lattice state budget exceeded during level %d expansion (cap %d)", lvl, opts.MaxStates)
		}
		for w := range locals {
			stats.Expanded += counters[w].expanded
			stats.PrunedStates += counters[w].prunedStates
			stats.PrunedSubtrees += counters[w].prunedSubtrees
			stats.Transitions += counters[w].transitions
			for k, v := range locals[w] {
				tl := bits.OnesCount64(k.d)
				if levels[tl] == nil {
					levels[tl] = make(map[latKey]latVal)
				}
				if _, ok := levels[tl][k]; !ok {
					stored++
				}
				relax(levels[tl], k, v)
			}
		}

		// Retire the expanded level to a compact sorted array — values
		// are final (every predecessor lives on a lower level) and only
		// the parent pointers are needed for witness reconstruction.
		recs := make([]latRecord, len(keys))
		for i, k := range keys {
			recs[i] = latRecord{key: k, parent: cur[k].parent}
		}
		retired[lvl] = recs
		levels[lvl] = nil

		// Tighten the incumbent from complete states — only at level
		// boundaries, so pruning decisions (and the reported statistics)
		// are deterministic for every worker count.
		for k, v := range levels[n] {
			if k.d == full && v.f < ls.ub {
				ls.ub = v.f
			}
		}
		if opts.MaxStates > 0 && stored > opts.MaxStates {
			stats.States = stored
			return latKey{}, nil, nil, fmt.Errorf("core: lattice state budget exceeded (%d states, cap %d)", stored, opts.MaxStates)
		}
	}
	stats.States = stored

	finals := levels[n]
	var bestKey latKey
	bestVal := latVal{f: math.Inf(1)}
	found := false
	for k, v := range finals {
		if !found || v.f < bestVal.f || (v.f == bestVal.f && keyLess(k, bestKey)) {
			bestKey, bestVal, found = k, v, true
		}
	}
	if !found {
		return latKey{}, nil, nil, fmt.Errorf("core: lattice search found no complete schedule")
	}
	return bestKey, retired, finals, nil
}

// reconstruct walks parent pointers from the best final state back to
// the root and returns the downset chain in execution order.
func (ls *latticeSolver) reconstruct(best latKey, retired [][]latRecord, finals map[latKey]latVal) []chainSegment {
	parentOf := func(k latKey) latKey {
		lvl := bits.OnesCount64(k.d)
		if lvl == len(ls.topo) {
			return finals[k].parent
		}
		recs := retired[lvl]
		i := sort.Search(len(recs), func(i int) bool { return !keyLess(recs[i].key, k) })
		return recs[i].parent
	}
	var segs []chainSegment
	for k := best; k.d != 0; {
		p := parentOf(k)
		segs = append(segs, chainSegment{prev: p.d, cur: k.d, last: int(k.last)})
		k = p
	}
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	return segs
}

// witness materializes a linearization realizing the chain: each
// segment in (global) topological order, with the designated last task
// moved to the segment's end — legal because it is maximal in the
// segment's downset — and a checkpoint after each segment.
func (ls *latticeSolver) witness(segs []chainSegment) ([]int, []bool) {
	n := len(ls.topo)
	order := make([]int, 0, n)
	ckv := make([]bool, n)
	for _, s := range segs {
		seg := s.cur &^ s.prev
		for _, t := range ls.topo {
			if seg&(1<<uint(t)) != 0 && (s.last < 0 || t != s.last) {
				order = append(order, t)
			}
		}
		if s.last >= 0 {
			order = append(order, s.last)
		}
		ckv[len(order)-1] = true
	}
	return order, ckv
}

// downsetChainValue re-accumulates the expectation of a checkpointed
// downset chain with the reference arithmetic: per segment, the work is
// the ascending-ID set sum, costs come from the cost model's set
// semantics, and segments associate right to left like the Algorithm 1
// recursion. Because every term is order-free, a chain has exactly one
// canonical value — SolveDAGLattice and SolveDAGExhaustive both report
// through this function, which is what makes their optima bit-identical
// rather than merely equal to rounding.
func downsetChainValue(g *dag.Graph, m expectation.Model, cm CostModel, succ []uint64, segs []chainSegment) float64 {
	total := 0.0
	for i := len(segs) - 1; i >= 0; i-- {
		s := segs[i]
		seg := s.cur &^ s.prev
		var w float64
		for rest := seg; rest != 0; rest &= rest - 1 {
			w += g.Task(bits.TrailingZeros64(rest)).Weight
		}
		var ck, rec float64
		switch model := cm.(type) {
		case LastTaskCosts:
			ck = g.Task(s.last).Checkpoint
			if i == 0 {
				rec = model.R0
			} else {
				rec = g.Task(segs[i-1].last).Recovery
			}
		case LiveSetCosts:
			ck = liveMaskSum(g, succ, seg, s.cur, false)
			if i == 0 {
				rec = model.R0
			} else {
				p := segs[i-1]
				rec = liveMaskSum(g, succ, p.cur, p.cur, true)
			}
		}
		total = m.ExpectedTime(w, ck, rec) + total
	}
	return total
}

// liveMaskSum sums checkpoint (or recovery) costs over the members of
// `members` that are live once `exec` has executed: sinks, and tasks
// with a successor outside exec.
func liveMaskSum(g *dag.Graph, succ []uint64, members, exec uint64, recovery bool) float64 {
	var sum float64
	for rest := members; rest != 0; rest &= rest - 1 {
		t := bits.TrailingZeros64(rest)
		if succ[t] == 0 || succ[t]&^exec != 0 {
			if recovery {
				sum += g.Task(t).Recovery
			} else {
				sum += g.Task(t).Checkpoint
			}
		}
	}
	return sum
}

// canonicalValue maps a per-order DAG result onto its downset chain and
// re-reports its value through downsetChainValue. It returns ok=false
// for cost models without set semantics and for graphs beyond the
// lattice's task cap, in which case the caller keeps the positional
// value.
func canonicalValue(g *dag.Graph, m expectation.Model, cm CostModel, res DAGResult) (float64, bool) {
	switch cm.(type) {
	case LastTaskCosts, LiveSetCosts:
	default:
		return 0, false
	}
	lat, err := g.Lattice()
	if err != nil {
		return 0, false
	}
	_, succ := lat.Masks()
	var segs []chainSegment
	var prev, cur uint64
	for i, id := range res.Order {
		cur |= 1 << uint(id)
		if res.CheckpointAfter[i] {
			segs = append(segs, chainSegment{prev: prev, cur: cur, last: id})
			prev = cur
		}
	}
	return downsetChainValue(g, m, cm, succ, segs), true
}
