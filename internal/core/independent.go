package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/expectation"
)

// IndependentProblem is the instance class of Proposition 2: n independent
// tasks, homogeneous checkpoint and recovery costs. Because tasks are
// independent and costs constant, a schedule is characterized (up to
// irrelevant orderings) by the partition of tasks into checkpoint groups:
// each group runs back-to-back and ends with one checkpoint, and the
// expected makespan is the sum of Proposition 1 over groups,
//
//	E = Σ_g e^{λR} (1/λ + D) (e^{λ(S_g + C)} − 1),   S_g = Σ_{i∈g} w_i.
//
// As in the proof of Proposition 2, the recovery cost R applies uniformly
// to every group, including the first.
type IndependentProblem struct {
	// Weights are the task durations w_i.
	Weights []float64
	// Checkpoint is the common checkpoint cost C.
	Checkpoint float64
	// Recovery is the common recovery cost R.
	Recovery float64
	// Model carries λ and D.
	Model expectation.Model
}

// Validate checks the instance parameters.
func (ip *IndependentProblem) Validate() error {
	if len(ip.Weights) == 0 {
		return fmt.Errorf("core: independent problem with no tasks")
	}
	for i, w := range ip.Weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("core: task %d has invalid weight %v", i, w)
		}
	}
	if ip.Checkpoint < 0 || ip.Recovery < 0 {
		return fmt.Errorf("core: negative checkpoint (%v) or recovery (%v) cost", ip.Checkpoint, ip.Recovery)
	}
	return ip.Model.Validate()
}

// TotalWork returns Σ w_i.
func (ip *IndependentProblem) TotalWork() float64 {
	var s float64
	for _, w := range ip.Weights {
		s += w
	}
	return s
}

// GroupCost returns the expected time of one group of total work s.
func (ip *IndependentProblem) GroupCost(s float64) float64 {
	return ip.Model.ExpectedTime(s, ip.Checkpoint, ip.Recovery)
}

// Grouping is a partition of the task indices into checkpoint groups.
type Grouping struct {
	// Groups partitions indices into Weights; each group ends with one
	// checkpoint.
	Groups [][]int
	// Expected is the exact expected makespan of the grouping.
	Expected float64
}

// Evaluate computes the exact expected makespan of an explicit partition
// and checks that it is a partition.
func (ip *IndependentProblem) Evaluate(groups [][]int) (float64, error) {
	n := len(ip.Weights)
	seen := make([]bool, n)
	var total float64
	for gi, g := range groups {
		if len(g) == 0 {
			return 0, fmt.Errorf("%w: empty group %d", ErrBadPlan, gi)
		}
		var s float64
		for _, i := range g {
			if i < 0 || i >= n {
				return 0, fmt.Errorf("%w: task index %d out of range", ErrBadPlan, i)
			}
			if seen[i] {
				return 0, fmt.Errorf("%w: task %d in two groups", ErrBadPlan, i)
			}
			seen[i] = true
			s += ip.Weights[i]
		}
		total += ip.GroupCost(s)
	}
	for i, ok := range seen {
		if !ok {
			return 0, fmt.Errorf("%w: task %d unscheduled", ErrBadPlan, i)
		}
	}
	return total, nil
}

// Plan converts the grouping into an executable Plan: groups run
// back-to-back in listed order, with a checkpoint after the last task of
// each group.
func (g Grouping) Plan() Plan {
	var order []int
	var ck []bool
	for _, group := range g.Groups {
		for gi, idx := range group {
			order = append(order, idx)
			ck = append(ck, gi == len(group)-1)
		}
	}
	return Plan{Order: order, CheckpointAfter: ck}
}

// MaxExactIndependent bounds the exact solver's instance size: the subset
// dynamic program enumerates all partitions in O(3^n).
const MaxExactIndependent = 18

// SolveIndependentExact computes the optimal grouping by dynamic
// programming over subsets: f(S) = min over groups G ⊆ S containing S's
// lowest-indexed task of cost(G) + f(S \ G). The lowest-task anchoring
// enumerates each partition exactly once, for O(3^n) total work. The
// strong NP-completeness of Proposition 2 says no algorithm polynomial in
// n (and in the magnitudes) exists, so exponential exact search is the
// expected tool at small scale.
func SolveIndependentExact(ip *IndependentProblem) (Grouping, error) {
	if err := ip.Validate(); err != nil {
		return Grouping{}, err
	}
	n := len(ip.Weights)
	if n > MaxExactIndependent {
		return Grouping{}, fmt.Errorf("core: exact independent solver limited to %d tasks, got %d", MaxExactIndependent, n)
	}
	size := 1 << n
	sum := make([]float64, size)
	for mask := 1; mask < size; mask++ {
		low := mask & -mask
		sum[mask] = sum[mask^low] + ip.Weights[bits.TrailingZeros32(uint32(low))]
	}
	f := make([]float64, size)
	choice := make([]int, size)
	for mask := 1; mask < size; mask++ {
		low := mask & -mask
		f[mask] = infinity
		// Enumerate submasks of mask containing the lowest set bit.
		rest := mask ^ low
		for sub := rest; ; sub = (sub - 1) & rest {
			group := sub | low
			if c := ip.GroupCost(sum[group]) + f[mask^group]; c < f[mask] {
				f[mask] = c
				choice[mask] = group
			}
			if sub == 0 {
				break
			}
		}
	}
	var groups [][]int
	for mask := size - 1; mask != 0; {
		g := choice[mask]
		var idxs []int
		for b := g; b != 0; b &= b - 1 {
			idxs = append(idxs, bits.TrailingZeros32(uint32(b&-b)))
		}
		groups = append(groups, idxs)
		mask ^= g
	}
	return Grouping{Groups: groups, Expected: f[size-1]}, nil
}

// LPTGrouping partitions the tasks into m groups with the
// longest-processing-time rule: tasks in decreasing weight order, each
// assigned to the currently lightest group. Balanced group sums minimize
// Σ e^{λS_g} by convexity, which is exactly the structure exploited in the
// proof of Proposition 2.
func (ip *IndependentProblem) LPTGrouping(m int) (Grouping, error) {
	if err := ip.Validate(); err != nil {
		return Grouping{}, err
	}
	n := len(ip.Weights)
	if m <= 0 || m > n {
		return Grouping{}, fmt.Errorf("core: group count %d out of range [1, %d]", m, n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ip.Weights[idx[a]] > ip.Weights[idx[b]] })
	groups := make([][]int, m)
	loads := make([]float64, m)
	for _, i := range idx {
		light := 0
		for g := 1; g < m; g++ {
			if loads[g] < loads[light] {
				light = g
			}
		}
		groups[light] = append(groups[light], i)
		loads[light] += ip.Weights[i]
	}
	// Drop empty groups (possible when m approaches n with zero weights).
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	e, err := ip.Evaluate(out)
	if err != nil {
		return Grouping{}, err
	}
	return Grouping{Groups: out, Expected: e}, nil
}

// SolveIndependentLPT scans every group count m ∈ [1, n], balances with
// LPT, and returns the best grouping found. It is the package's default
// polynomial heuristic: O(n² log n).
func SolveIndependentLPT(ip *IndependentProblem) (Grouping, error) {
	if err := ip.Validate(); err != nil {
		return Grouping{}, err
	}
	best := Grouping{Expected: infinity}
	for m := 1; m <= len(ip.Weights); m++ {
		g, err := ip.LPTGrouping(m)
		if err != nil {
			return Grouping{}, err
		}
		if g.Expected < best.Expected {
			best = g
		}
	}
	return best, nil
}

// SolveIndependentChunk targets the Lambert-W optimal chunk size: it
// computes the divisible-load optimum W* (expectation.OptimalChunk), sets
// m ≈ TotalWork/W*, and LPT-balances around m, trying m−1, m, m+1. It is
// faster than the full LPT scan — O(n log n) — and near-optimal when task
// granularity is fine relative to W*.
func SolveIndependentChunk(ip *IndependentProblem) (Grouping, error) {
	if err := ip.Validate(); err != nil {
		return Grouping{}, err
	}
	n := len(ip.Weights)
	chunk, err := expectation.OptimalChunk(ip.Checkpoint, ip.Model.Lambda)
	if err != nil {
		return Grouping{}, err
	}
	var target int
	if chunk <= 0 {
		target = n
	} else {
		target = int(math.Round(ip.TotalWork() / chunk))
	}
	best := Grouping{Expected: infinity}
	for _, m := range []int{target - 1, target, target + 1} {
		if m < 1 {
			m = 1
		}
		if m > n {
			m = n
		}
		g, err := ip.LPTGrouping(m)
		if err != nil {
			return Grouping{}, err
		}
		if g.Expected < best.Expected {
			best = g
		}
	}
	return best, nil
}

// SingleGroupPerTask returns the grouping that checkpoints after every
// task (m = n), a baseline.
func (ip *IndependentProblem) SingleGroupPerTask() (Grouping, error) {
	groups := make([][]int, len(ip.Weights))
	for i := range groups {
		groups[i] = []int{i}
	}
	e, err := ip.Evaluate(groups)
	if err != nil {
		return Grouping{}, err
	}
	return Grouping{Groups: groups, Expected: e}, nil
}

// OneGroup returns the grouping with a single terminal checkpoint (m = 1),
// a baseline.
func (ip *IndependentProblem) OneGroup() (Grouping, error) {
	n := len(ip.Weights)
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	groups := [][]int{g}
	e, err := ip.Evaluate(groups)
	if err != nil {
		return Grouping{}, err
	}
	return Grouping{Groups: groups, Expected: e}, nil
}
