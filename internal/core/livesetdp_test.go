package core

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/numeric"
	"repro/internal/rng"
)

// TestLiveSetDPMatchesGeneric pins the incremental live-set DP (and its
// work-only pruning) to the generic per-pair rescanning DP on random
// DAGs: same placements up to ulp-level ties, and values — both
// re-derived through the cost model's own arithmetic — equal to
// ulp-scale.
func TestLiveSetDPMatchesGeneric(t *testing.T) {
	r := rng.New(88)
	builders := []func(s *rng.Stream) (*dag.Graph, error){
		func(s *rng.Stream) (*dag.Graph, error) { return dag.Layered(4, 5, 0.5, dag.DefaultWeights(), s) },
		func(s *rng.Stream) (*dag.Graph, error) { return dag.ForkJoin(3, 4, dag.DefaultWeights(), s) },
		func(s *rng.Stream) (*dag.Graph, error) { return dag.MontageLike(7, dag.DefaultWeights(), s) },
		func(s *rng.Stream) (*dag.Graph, error) { return dag.Chain(25, dag.DefaultWeights(), s) },
	}
	lambdas := []float64{1e-6, 0.02, 0.3}
	for bi, build := range builders {
		for trial := 0; trial < 4; trial++ {
			g, err := build(r.Split())
			if err != nil {
				t.Fatal(err)
			}
			m := expectation.Model{Lambda: lambdas[trial%len(lambdas)], Downtime: r.Range(0, 1)}
			order, err := g.TopologicalOrder()
			if err != nil {
				t.Fatal(err)
			}
			lv := LiveSetCosts{R0: r.Range(0, 1)}
			fast, err := solveOrderDPLiveSet(g, order, m, lv, &orderScratch{})
			if err != nil {
				t.Fatal(err)
			}
			slow, err := solveOrderDPGeneric(g, order, m, lv)
			if err != nil {
				t.Fatal(err)
			}
			if numeric.RelErr(fast.Expected, slow.Expected) > 1e-11 {
				t.Fatalf("builder %d λ=%v: live-set %v vs generic %v", bi, m.Lambda, fast.Expected, slow.Expected)
			}
			same := true
			for i := range fast.CheckpointAfter {
				if fast.CheckpointAfter[i] != slow.CheckpointAfter[i] {
					same = false
				}
			}
			if same && fast.Expected != slow.Expected {
				t.Fatalf("builder %d: same placement but Expected %v vs %v", bi, fast.Expected, slow.Expected)
			}
		}
	}
}

// TestSolveOrderDPDispatch ensures the public entry point routes each
// cost model to an equivalent solver: results agree with the generic DP
// regardless of the acceleration taken.
func TestSolveOrderDPDispatch(t *testing.T) {
	r := rng.New(99)
	g, err := dag.Layered(4, 4, 0.5, dag.DefaultWeights(), r.Split())
	if err != nil {
		t.Fatal(err)
	}
	m := expectation.Model{Lambda: 0.05, Downtime: 0.5}
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range []CostModel{LastTaskCosts{R0: 0.2}, LiveSetCosts{R0: 0.2}} {
		got, err := SolveOrderDP(g, order, m, cm)
		if err != nil {
			t.Fatal(err)
		}
		want, err := solveOrderDPGeneric(g, order, m, cm)
		if err != nil {
			t.Fatal(err)
		}
		if numeric.RelErr(got.Expected, want.Expected) > 1e-11 {
			t.Errorf("%s: dispatched %v vs generic %v", cm.Name(), got.Expected, want.Expected)
		}
	}
}
