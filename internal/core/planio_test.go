package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	p, err := NewPlan([]int{2, 0, 1, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Order) != 4 {
		t.Fatalf("order = %v", back.Order)
	}
	for i := range p.Order {
		if p.Order[i] != back.Order[i] || p.CheckpointAfter[i] != back.CheckpointAfter[i] {
			t.Fatalf("round trip changed plan at %d: %+v vs %+v", i, p, back)
		}
	}
}

func TestPlanJSONRejectsBad(t *testing.T) {
	cases := []string{
		`{"order":[],"checkpoints":[]}`,      // empty order
		`{"order":[0,1],"checkpoints":[5]}`,  // out-of-range checkpoint
		`{"order":[0,1],"checkpoints":[-1]}`, // negative checkpoint
		`{nonsense`,                          // invalid JSON
	}
	for i, c := range cases {
		if _, err := ReadPlan(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail: %s", i, c)
		}
	}
}

func TestPlanMarshalRejectsInvalid(t *testing.T) {
	bad := Plan{Order: []int{0, 1}, CheckpointAfter: []bool{true, false}} // no final ckpt
	if _, err := bad.MarshalJSON(); err == nil {
		t.Error("invalid plan should not marshal")
	}
}
