package core

import (
	"testing"

	"repro/internal/expectation"
	"repro/internal/numeric"
	"repro/internal/rng"
)

func homogeneousProblem(t *testing.T, n int, seed uint64, lambda, c float64) *ChainProblem {
	t.Helper()
	r := rng.New(seed)
	m, err := expectation.NewModel(lambda, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cp := &ChainProblem{
		Weights:         make([]float64, n),
		Ckpt:            make([]float64, n),
		Rec:             make([]float64, n),
		InitialRecovery: c,
		Model:           m,
	}
	for i := 0; i < n; i++ {
		cp.Weights[i] = r.Range(0.5, 8)
		cp.Ckpt[i] = c
		cp.Rec[i] = c
	}
	return cp
}

func TestBoundedMatchesUnboundedWithFullBudget(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		cp := randomChainProblem(t, 12, seed, 0.05, 0.3)
		full, err := SolveChainDP(cp)
		if err != nil {
			t.Fatal(err)
		}
		bounded, err := SolveChainDPBounded(cp, 12)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(full.Expected, bounded.Expected, 1e-9) {
			t.Errorf("seed %d: bounded(full budget) %v ≠ unbounded %v", seed, bounded.Expected, full.Expected)
		}
	}
}

func TestBoundedMonotoneInBudget(t *testing.T) {
	cp := randomChainProblem(t, 14, 3, 0.1, 0.3)
	prev := infinity
	for k := 1; k <= 14; k++ {
		res, err := SolveChainDPBounded(cp, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Expected > prev+1e-9 {
			t.Errorf("budget %d: expectation %v worse than smaller budget %v", k, res.Expected, prev)
		}
		if got := len(res.Positions()); got > k {
			t.Errorf("budget %d: used %d checkpoints", k, got)
		}
		ev, err := cp.Makespan(res.CheckpointAfter)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(ev, res.Expected, 1e-9) {
			t.Errorf("budget %d: claimed %v, evaluates to %v", k, res.Expected, ev)
		}
		prev = res.Expected
	}
}

func TestBoundedSingleCheckpoint(t *testing.T) {
	cp := randomChainProblem(t, 10, 4, 0.05, 0.3)
	res, err := SolveChainDPBounded(cp, 1)
	if err != nil {
		t.Fatal(err)
	}
	never, err := NeverCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(res.Expected, never.Expected, 1e-9) {
		t.Errorf("budget 1 %v ≠ never-checkpoint %v", res.Expected, never.Expected)
	}
}

func TestBoundedValidation(t *testing.T) {
	cp := randomChainProblem(t, 5, 5, 0.05, 0)
	if _, err := SolveChainDPBounded(cp, 0); err == nil {
		t.Error("budget 0 should fail")
	}
	// Budget beyond n is clamped, not an error.
	if _, err := SolveChainDPBounded(cp, 50); err != nil {
		t.Errorf("oversized budget should clamp: %v", err)
	}
}

func TestIsHomogeneous(t *testing.T) {
	cp := homogeneousProblem(t, 6, 1, 0.05, 0.4)
	if !cp.IsHomogeneous() {
		t.Error("homogeneous problem not recognized")
	}
	cp.Ckpt[2] = 9
	if cp.IsHomogeneous() {
		t.Error("heterogeneous checkpoint cost not detected")
	}
	cp2 := homogeneousProblem(t, 6, 1, 0.05, 0.4)
	cp2.InitialRecovery = 0
	if cp2.IsHomogeneous() {
		t.Error("R₀ ≠ R not detected")
	}
}

func TestHomogeneousMatchesGeneralDP(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		for _, lambda := range []float64{1e-3, 0.02, 0.15, 0.5} {
			for _, c := range []float64{0.05, 0.5, 3} {
				cp := homogeneousProblem(t, 40, seed, lambda, c)
				general, err := SolveChainDP(cp)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := SolveChainDPHomogeneous(cp)
				if err != nil {
					t.Fatal(err)
				}
				if !numeric.AlmostEqual(general.Expected, fast.Expected, 1e-9) {
					t.Errorf("seed %d λ=%v C=%v: pruned %v ≠ general %v",
						seed, lambda, c, fast.Expected, general.Expected)
				}
			}
		}
	}
}

func TestHomogeneousRejectsHeterogeneous(t *testing.T) {
	cp := randomChainProblem(t, 8, 6, 0.05, 0.3)
	if _, err := SolveChainDPHomogeneous(cp); err == nil {
		t.Error("heterogeneous instance should be rejected")
	}
}
