package core

import (
	"fmt"
)

// ChainResult is the output of the chain optimizers: the optimal expected
// makespan and the checkpoint placement achieving it.
type ChainResult struct {
	// Expected is the optimal expected makespan E*.
	Expected float64
	// CheckpointAfter is the optimal checkpoint vector (final position
	// always true).
	CheckpointAfter []bool
}

// Positions returns the checkpointed positions of the result.
func (r ChainResult) Positions() []int {
	var out []int
	for i, ck := range r.CheckpointAfter {
		if ck {
			out = append(out, i)
		}
	}
	return out
}

// SolveChainDP computes the optimal checkpoint placement for the chain
// problem with the iterative form of Algorithm 1 (Proposition 3).
//
// Recurrence, 0-based over positions x ∈ [0, n):
//
//	E(x) = min_{j ∈ [x, n)}  e^{λ·rec(x)} (1/λ + D)(e^{λ(Σ_{i=x}^{j} w_i + C_j)} − 1) + E(j+1)
//
// with E(n) = 0 and rec(x) = R₀ for x = 0, R_{x−1} otherwise. Prefix sums
// make each segment expectation O(1), so the total cost is O(n²) — the
// complexity stated by Proposition 3.
func SolveChainDP(cp *ChainProblem) (ChainResult, error) {
	if err := cp.Validate(); err != nil {
		return ChainResult{}, err
	}
	n := cp.Len()
	prefix := make([]float64, n+1)
	for i, w := range cp.Weights {
		prefix[i+1] = prefix[i] + w
	}
	best := make([]float64, n+1)
	next := make([]int, n) // next[x] = end position j of the first segment of the optimal suffix plan from x
	for x := n - 1; x >= 0; x-- {
		rec := cp.recoveryBefore(x)
		best[x] = infinity
		next[x] = n - 1
		for j := x; j < n; j++ {
			w := prefix[j+1] - prefix[x]
			cur := cp.Model.ExpectedTime(w, cp.Ckpt[j], rec) + best[j+1]
			if cur < best[x] {
				best[x] = cur
				next[x] = j
			}
		}
	}
	ck := make([]bool, n)
	for x := 0; x < n; {
		j := next[x]
		ck[j] = true
		x = j + 1
	}
	return ChainResult{Expected: best[0], CheckpointAfter: ck}, nil
}

// SolveChainDPRecursive computes the same optimum with the memoized
// recursion written exactly as Algorithm 1 in the paper (DPMakespan(x, n)
// returning the pair ⟨best expectation, index of the task preceding the
// first checkpoint⟩). It exists so tests can confirm the transcription of
// the published pseudo-code agrees with the iterative solver.
func SolveChainDPRecursive(cp *ChainProblem) (ChainResult, error) {
	if err := cp.Validate(); err != nil {
		return ChainResult{}, err
	}
	n := cp.Len()
	prefix := make([]float64, n+1)
	for i, w := range cp.Weights {
		prefix[i+1] = prefix[i] + w
	}
	type entry struct {
		exp     float64
		numTask int
		done    bool
	}
	memo := make([]entry, n)

	// dpMakespan mirrors Algorithm 1 with x 0-based: it computes the
	// optimal expectation for executing positions x..n−1.
	var dpMakespan func(x int) (float64, int)
	dpMakespan = func(x int) (float64, int) {
		if memo[x].done {
			return memo[x].exp, memo[x].numTask
		}
		rec := cp.recoveryBefore(x)
		if x == n-1 {
			e := cp.Model.ExpectedTime(cp.Weights[n-1], cp.Ckpt[n-1], rec)
			memo[x] = entry{exp: e, numTask: n - 1, done: true}
			return e, n - 1
		}
		// "best ← execute everything to the end, checkpoint after T_n."
		best := cp.Model.ExpectedTime(prefix[n]-prefix[x], cp.Ckpt[n-1], rec)
		numTask := n - 1
		for j := x; j <= n-2; j++ {
			expSucc, _ := dpMakespan(j + 1)
			cur := expSucc + cp.Model.ExpectedTime(prefix[j+1]-prefix[x], cp.Ckpt[j], rec)
			if cur < best {
				best = cur
				numTask = j
			}
		}
		memo[x] = entry{exp: best, numTask: numTask, done: true}
		return best, numTask
	}

	exp, _ := dpMakespan(0)
	ck := make([]bool, n)
	for x := 0; x < n; {
		_, j := dpMakespan(x)
		ck[j] = true
		x = j + 1
	}
	return ChainResult{Expected: exp, CheckpointAfter: ck}, nil
}

// BruteForceChain enumerates all 2^{n−1} checkpoint placements (the final
// position is always checkpointed) and returns the best. It validates the
// DP on small chains; n is capped to keep the enumeration tractable.
func BruteForceChain(cp *ChainProblem) (ChainResult, error) {
	if err := cp.Validate(); err != nil {
		return ChainResult{}, err
	}
	n := cp.Len()
	const maxN = 24
	if n > maxN {
		return ChainResult{}, fmt.Errorf("core: brute force limited to %d positions, got %d", maxN, n)
	}
	bestE := infinity
	var bestCk []bool
	ck := make([]bool, n)
	ck[n-1] = true
	for mask := 0; mask < 1<<(n-1); mask++ {
		for i := 0; i < n-1; i++ {
			ck[i] = mask&(1<<i) != 0
		}
		e, err := cp.Makespan(ck)
		if err != nil {
			return ChainResult{}, err
		}
		if e < bestE {
			bestE = e
			bestCk = append(bestCk[:0], ck...)
		}
	}
	out := make([]bool, n)
	copy(out, bestCk)
	return ChainResult{Expected: bestE, CheckpointAfter: out}, nil
}

// AlwaysCheckpoint returns the baseline placement that checkpoints after
// every task.
func AlwaysCheckpoint(cp *ChainProblem) (ChainResult, error) {
	n := cp.Len()
	ck := make([]bool, n)
	for i := range ck {
		ck[i] = true
	}
	e, err := cp.Makespan(ck)
	if err != nil {
		return ChainResult{}, err
	}
	return ChainResult{Expected: e, CheckpointAfter: ck}, nil
}

// NeverCheckpoint returns the baseline placement with only the mandatory
// final checkpoint.
func NeverCheckpoint(cp *ChainProblem) (ChainResult, error) {
	n := cp.Len()
	ck := make([]bool, n)
	ck[n-1] = true
	e, err := cp.Makespan(ck)
	if err != nil {
		return ChainResult{}, err
	}
	return ChainResult{Expected: e, CheckpointAfter: ck}, nil
}

// PeriodicCheckpoint returns the baseline that checkpoints as soon as the
// accumulated work since the last checkpoint reaches the given period —
// the divisible-load policy (Young/Daly) transplanted to non-divisible
// tasks. A non-positive period degenerates to AlwaysCheckpoint.
func PeriodicCheckpoint(cp *ChainProblem, period float64) (ChainResult, error) {
	n := cp.Len()
	ck := make([]bool, n)
	var acc float64
	for i := 0; i < n; i++ {
		acc += cp.Weights[i]
		if acc >= period {
			ck[i] = true
			acc = 0
		}
	}
	ck[n-1] = true
	e, err := cp.Makespan(ck)
	if err != nil {
		return ChainResult{}, err
	}
	return ChainResult{Expected: e, CheckpointAfter: ck}, nil
}
