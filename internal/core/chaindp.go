package core

import (
	"fmt"

	"repro/internal/expectation"
)

// ChainResult is the output of the chain optimizers: the optimal expected
// makespan and the checkpoint placement achieving it.
type ChainResult struct {
	// Expected is the optimal expected makespan E*.
	Expected float64
	// CheckpointAfter is the optimal checkpoint vector (final position
	// always true).
	CheckpointAfter []bool
}

// Positions returns the checkpointed positions of the result.
func (r ChainResult) Positions() []int {
	return checkpointPositions(r.CheckpointAfter)
}

// DPStats reports how much work a chain DP actually did and which arm
// of the solver portfolio did it.
type DPStats struct {
	// Transitions counts cost-oracle evaluations (evaluated DP
	// transitions for the scanning arms, Segment calls for the monotone
	// arm); the unpruned Proposition 3 recurrence evaluates n(n+1)/2.
	Transitions int64
	// Arm reports which solver arm produced the result.
	Arm ChainArm
	// Certified reports the quadrangle-inequality certificate consulted
	// by the dispatching portfolio (always true when Arm is ArmMonotone;
	// false for the pinned kernel solvers, which skip certification).
	Certified bool
}

// SolveChainDP computes the optimal checkpoint placement for the chain
// problem: the recurrence of Algorithm 1 (Proposition 3),
//
//	E(x) = min_{j ∈ [x, n)}  e^{λ·rec(x)} (1/λ + D)(e^{λ(Σ_{i=x}^{j} w_i + C_j)} − 1) + E(j+1)
//
// with E(n) = 0 and rec(x) = R₀ for x = 0, R_{x−1} otherwise. It is an
// auto-dispatching portfolio over two exact arms sharing the
// segment-expectation kernel (per-problem exponential tables: every
// transition a fused multiply, no transcendental calls):
//
//   - instances whose segment-cost matrix the quadrangle-inequality
//     certifier (expectation.CertifyQuadrangle) accepts run the
//     totally-monotone-matrix arm: O(n log n) oracle evaluations worst
//     case (see monotone.go), which opens million-position chains;
//   - everything else falls back to the kernel scan, whose exact
//     monotone bound stops each row as soon as the segment term alone
//     exceeds the incumbent — near-linear on realistic instances, O(n²)
//     worst case. Pruning provably never changes the result of the
//     kernel scan (see expectation.SegmentKernel).
//
// Both arms resolve exact decision ties toward the earliest end
// position, so they agree with each other except on ulp-scale
// floating-point ties; against the dense scan, the kernel arithmetic
// may resolve candidates tied to within its ~4·10⁻¹³ relative error the
// other way, so placements agree except on such ties and values agree
// to that tolerance (pinned by the property tests in
// kernel_property_test.go and monotone_property_test.go).
//
// The reported Expected is re-accumulated over the chosen placement with
// the reference arithmetic of Model.ExpectedTime, exactly as Algorithm 1
// would compute it, so when the placement matches SolveChainDPDense's
// the value is bit-identical to it.
func SolveChainDP(cp *ChainProblem) (ChainResult, error) {
	res, _, err := SolveChainDPStats(cp)
	return res, err
}

// SolveChainDPStats is SolveChainDP, additionally reporting which arm
// the portfolio dispatched to and how many cost-oracle evaluations it
// made.
func SolveChainDPStats(cp *ChainProblem) (ChainResult, DPStats, error) {
	if err := cp.Validate(); err != nil {
		return ChainResult{}, DPStats{}, err
	}
	kern, err := cp.kernel()
	if err != nil {
		return ChainResult{}, DPStats{}, err
	}
	cert := kern.CertifyQuadrangle()
	if cert.Certified {
		next, evals := solveChainMonotoneRows(kern)
		stats := DPStats{Transitions: evals, Arm: ArmMonotone, Certified: true}
		return chainResultFromNext(cp, next), stats, nil
	}
	next, evals := solveChainKernelRows(kern)
	stats := DPStats{Transitions: evals, Arm: ArmKernel}
	return chainResultFromNext(cp, next), stats, nil
}

// SolveChainDPKernel pins the kernel-scan arm: it never consults the
// certifier, so it serves as the universal fallback reference and the
// kernel-arm baseline in benchmarks and experiments (E13, E16).
func SolveChainDPKernel(cp *ChainProblem) (ChainResult, error) {
	res, _, err := SolveChainDPKernelStats(cp)
	return res, err
}

// SolveChainDPKernelStats is SolveChainDPKernel with the evaluated
// transition count.
func SolveChainDPKernelStats(cp *ChainProblem) (ChainResult, DPStats, error) {
	if err := cp.Validate(); err != nil {
		return ChainResult{}, DPStats{}, err
	}
	kern, err := cp.kernel()
	if err != nil {
		return ChainResult{}, DPStats{}, err
	}
	next, evals := solveChainKernelRows(kern)
	return chainResultFromNext(cp, next), DPStats{Transitions: evals, Arm: ArmKernel}, nil
}

// solveChainKernelRows runs the pruned kernel scan over every row,
// returning the per-row decisions and the evaluated transition count.
func solveChainKernelRows(kern *expectation.SegmentKernel) ([]int, int64) {
	n := kern.Len()
	best := make([]float64, n+1)
	next := make([]int, n) // next[x] = end position j of the first segment of the optimal suffix plan from x
	var evals int64
	for x := n - 1; x >= 0; x-- {
		var scanned int64
		best[x], next[x], scanned = prunedRow(kern, x, best)
		evals += scanned
	}
	return next, evals
}

// prunedRow scans one Algorithm 1 row: min over j ∈ [x, n) of
// kern.Segment(x, j) + tail[j+1]. tail must have length n+1 with
// nonnegative (possibly +Inf) entries, which is what makes the early
// stop exact: every remaining candidate's segment term alone is at
// least Bound, so once that exceeds the incumbent (with the kernel's
// slack) none can strictly improve it. Ties keep the earliest j, like
// the dense scan. Returns the row optimum, its argmin, and the number
// of transitions evaluated.
//
// It is shared by SolveChainDP and solveOrderDPKernel; the bounded and
// live-set DPs keep specialized loops (per-layer initialization and
// tie-breaking, incremental per-transition costs) but reuse the same
// Bound/Slack stopping rule.
func prunedRow(kern *expectation.SegmentKernel, x int, tail []float64) (float64, int, int64) {
	n := kern.Len()
	slack := kern.Slack()
	bestE := infinity
	bestJ := n - 1
	var scanned int64
	for j := x; j < n; j++ {
		scanned++
		cur := kern.Segment(x, j) + tail[j+1]
		if cur < bestE {
			bestE = cur
			bestJ = j
		}
		if j+1 < n && kern.Bound(x, j+1) >= bestE*slack {
			break
		}
	}
	return bestE, bestJ, scanned
}

// kernel builds the segment-expectation kernel for the problem.
func (cp *ChainProblem) kernel() (*expectation.SegmentKernel, error) {
	n := cp.Len()
	rec := make([]float64, n)
	for x := 0; x < n; x++ {
		rec[x] = cp.recoveryBefore(x)
	}
	return expectation.NewSegmentKernel(cp.Model, cp.Weights, cp.Ckpt, rec)
}

// expectedAlong re-accumulates the expectation of the plan encoded by the
// next[] vector using the reference arithmetic, associating exactly like
// the Algorithm 1 recursion (segment + suffix, right to left).
func (cp *ChainProblem) expectedAlong(next []int) float64 {
	n := cp.Len()
	prefix := make([]float64, n+1)
	for i, w := range cp.Weights {
		prefix[i+1] = prefix[i] + w
	}
	var segs []float64
	for x := 0; x < n; {
		j := next[x]
		segs = append(segs, cp.Model.ExpectedTime(prefix[j+1]-prefix[x], cp.Ckpt[j], cp.recoveryBefore(x)))
		x = j + 1
	}
	total := 0.0
	for i := len(segs) - 1; i >= 0; i-- {
		total = segs[i] + total
	}
	return total
}

// SolveChainDPDense is the unaccelerated iterative form of Algorithm 1:
// prefix sums make each segment expectation O(1), for the O(n²) total
// cost stated by Proposition 3, with every transition paying the full
// exp/expm1 evaluation of Model.ExpectedTime. It is the reference the
// kernel fast path is tested against and the kernel-off arm of
// experiment E13.
func SolveChainDPDense(cp *ChainProblem) (ChainResult, error) {
	if err := cp.Validate(); err != nil {
		return ChainResult{}, err
	}
	n := cp.Len()
	prefix := make([]float64, n+1)
	for i, w := range cp.Weights {
		prefix[i+1] = prefix[i] + w
	}
	best := make([]float64, n+1)
	next := make([]int, n) // next[x] = end position j of the first segment of the optimal suffix plan from x
	for x := n - 1; x >= 0; x-- {
		rec := cp.recoveryBefore(x)
		best[x] = infinity
		next[x] = n - 1
		for j := x; j < n; j++ {
			w := prefix[j+1] - prefix[x]
			cur := cp.Model.ExpectedTime(w, cp.Ckpt[j], rec) + best[j+1]
			if cur < best[x] {
				best[x] = cur
				next[x] = j
			}
		}
	}
	ck := make([]bool, n)
	for x := 0; x < n; {
		j := next[x]
		ck[j] = true
		x = j + 1
	}
	return ChainResult{Expected: best[0], CheckpointAfter: ck}, nil
}

// SolveChainDPRecursive computes the same optimum with the memoized
// recursion written exactly as Algorithm 1 in the paper (DPMakespan(x, n)
// returning the pair ⟨best expectation, index of the task preceding the
// first checkpoint⟩). It exists so tests can confirm the transcription of
// the published pseudo-code agrees with the iterative solver.
func SolveChainDPRecursive(cp *ChainProblem) (ChainResult, error) {
	if err := cp.Validate(); err != nil {
		return ChainResult{}, err
	}
	n := cp.Len()
	prefix := make([]float64, n+1)
	for i, w := range cp.Weights {
		prefix[i+1] = prefix[i] + w
	}
	type entry struct {
		exp     float64
		numTask int
		done    bool
	}
	memo := make([]entry, n)

	// dpMakespan mirrors Algorithm 1 with x 0-based: it computes the
	// optimal expectation for executing positions x..n−1.
	var dpMakespan func(x int) (float64, int)
	dpMakespan = func(x int) (float64, int) {
		if memo[x].done {
			return memo[x].exp, memo[x].numTask
		}
		rec := cp.recoveryBefore(x)
		if x == n-1 {
			e := cp.Model.ExpectedTime(cp.Weights[n-1], cp.Ckpt[n-1], rec)
			memo[x] = entry{exp: e, numTask: n - 1, done: true}
			return e, n - 1
		}
		// "best ← execute everything to the end, checkpoint after T_n."
		best := cp.Model.ExpectedTime(prefix[n]-prefix[x], cp.Ckpt[n-1], rec)
		numTask := n - 1
		for j := x; j <= n-2; j++ {
			expSucc, _ := dpMakespan(j + 1)
			cur := expSucc + cp.Model.ExpectedTime(prefix[j+1]-prefix[x], cp.Ckpt[j], rec)
			if cur < best {
				best = cur
				numTask = j
			}
		}
		memo[x] = entry{exp: best, numTask: numTask, done: true}
		return best, numTask
	}

	exp, _ := dpMakespan(0)
	ck := make([]bool, n)
	for x := 0; x < n; {
		_, j := dpMakespan(x)
		ck[j] = true
		x = j + 1
	}
	return ChainResult{Expected: exp, CheckpointAfter: ck}, nil
}

// BruteForceChain enumerates all 2^{n−1} checkpoint placements (the final
// position is always checkpointed) and returns the best. It validates the
// DP on small chains; n is capped to keep the enumeration tractable.
func BruteForceChain(cp *ChainProblem) (ChainResult, error) {
	if err := cp.Validate(); err != nil {
		return ChainResult{}, err
	}
	n := cp.Len()
	const maxN = 24
	if n > maxN {
		return ChainResult{}, fmt.Errorf("core: brute force limited to %d positions, got %d", maxN, n)
	}
	bestE := infinity
	var bestCk []bool
	ck := make([]bool, n)
	ck[n-1] = true
	for mask := 0; mask < 1<<(n-1); mask++ {
		for i := 0; i < n-1; i++ {
			ck[i] = mask&(1<<i) != 0
		}
		e, err := cp.Makespan(ck)
		if err != nil {
			return ChainResult{}, err
		}
		if e < bestE {
			bestE = e
			bestCk = append(bestCk[:0], ck...)
		}
	}
	out := make([]bool, n)
	copy(out, bestCk)
	return ChainResult{Expected: bestE, CheckpointAfter: out}, nil
}

// AlwaysCheckpoint returns the baseline placement that checkpoints after
// every task.
func AlwaysCheckpoint(cp *ChainProblem) (ChainResult, error) {
	n := cp.Len()
	ck := make([]bool, n)
	for i := range ck {
		ck[i] = true
	}
	e, err := cp.Makespan(ck)
	if err != nil {
		return ChainResult{}, err
	}
	return ChainResult{Expected: e, CheckpointAfter: ck}, nil
}

// NeverCheckpoint returns the baseline placement with only the mandatory
// final checkpoint.
func NeverCheckpoint(cp *ChainProblem) (ChainResult, error) {
	n := cp.Len()
	ck := make([]bool, n)
	ck[n-1] = true
	e, err := cp.Makespan(ck)
	if err != nil {
		return ChainResult{}, err
	}
	return ChainResult{Expected: e, CheckpointAfter: ck}, nil
}

// PeriodicCheckpoint returns the baseline that checkpoints as soon as the
// accumulated work since the last checkpoint reaches the given period —
// the divisible-load policy (Young/Daly) transplanted to non-divisible
// tasks. A non-positive period degenerates to AlwaysCheckpoint.
func PeriodicCheckpoint(cp *ChainProblem, period float64) (ChainResult, error) {
	n := cp.Len()
	ck := make([]bool, n)
	var acc float64
	for i := 0; i < n; i++ {
		acc += cp.Weights[i]
		if acc >= period {
			ck[i] = true
			acc = 0
		}
	}
	ck[n-1] = true
	e, err := cp.Makespan(ck)
	if err != nil {
		return ChainResult{}, err
	}
	return ChainResult{Expected: e, CheckpointAfter: ck}, nil
}
