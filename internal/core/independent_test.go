package core

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/partition"
	"repro/internal/rng"
)

func randomIndependent(t *testing.T, n int, seed uint64, lambda float64) *IndependentProblem {
	t.Helper()
	r := rng.New(seed)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = r.Range(1, 10)
	}
	return &IndependentProblem{
		Weights:    weights,
		Checkpoint: 0.4,
		Recovery:   0.4,
		Model:      mustModelT(t, lambda, 0),
	}
}

func TestIndependentValidation(t *testing.T) {
	m := mustModelT(t, 0.1, 0)
	bad := []*IndependentProblem{
		{Weights: nil, Model: m},
		{Weights: []float64{-1}, Model: m},
		{Weights: []float64{1}, Checkpoint: -1, Model: m},
		{Weights: []float64{1}, Recovery: -1, Model: m},
	}
	for i, ip := range bad {
		if err := ip.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestEvaluateChecksPartition(t *testing.T) {
	ip := randomIndependent(t, 4, 1, 0.05)
	if _, err := ip.Evaluate([][]int{{0, 1}, {2}}); err == nil {
		t.Error("missing task should fail")
	}
	if _, err := ip.Evaluate([][]int{{0, 1}, {1, 2, 3}}); err == nil {
		t.Error("duplicated task should fail")
	}
	if _, err := ip.Evaluate([][]int{{0, 1, 2, 3}, {}}); err == nil {
		t.Error("empty group should fail")
	}
	if _, err := ip.Evaluate([][]int{{0, 1, 2, 9}}); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestExactSolverSmallCases(t *testing.T) {
	// Two identical tasks, checkpoint cheap relative to failure risk:
	// grouping decision must match direct enumeration.
	ip := &IndependentProblem{
		Weights:    []float64{5, 5},
		Checkpoint: 0.1,
		Recovery:   0.1,
		Model:      mustModelT(t, 0.3, 0),
	}
	got, err := SolveIndependentExact(ip)
	if err != nil {
		t.Fatal(err)
	}
	together, _ := ip.Evaluate([][]int{{0, 1}})
	apart, _ := ip.Evaluate([][]int{{0}, {1}})
	want := math.Min(together, apart)
	if !numeric.AlmostEqual(got.Expected, want, 1e-12) {
		t.Errorf("exact = %v, enumeration = %v", got.Expected, want)
	}
}

func TestExactSolverMatchesExhaustivePartitions(t *testing.T) {
	// Cross-check the subset DP against explicit enumeration of all set
	// partitions (Bell number) for n = 5.
	ip := randomIndependent(t, 5, 2, 0.15)
	exact, err := SolveIndependentExact(ip)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	var rec func(groups [][]int, next int)
	rec = func(groups [][]int, next int) {
		if next == len(ip.Weights) {
			if e, err := ip.Evaluate(groups); err == nil && e < best {
				best = e
			}
			return
		}
		for i := range groups {
			groups[i] = append(groups[i], next)
			rec(groups, next+1)
			groups[i] = groups[i][:len(groups[i])-1]
		}
		rec(append(groups, []int{next}), next+1)
	}
	rec(nil, 0)
	if !numeric.AlmostEqual(exact.Expected, best, 1e-9) {
		t.Errorf("subset DP %v ≠ partition enumeration %v", exact.Expected, best)
	}
}

func TestExactSolverCap(t *testing.T) {
	ip := randomIndependent(t, MaxExactIndependent+1, 3, 0.01)
	if _, err := SolveIndependentExact(ip); err == nil {
		t.Error("oversized exact solve should fail")
	}
}

func TestHeuristicsAreValidAndOrdered(t *testing.T) {
	for seed := uint64(5); seed < 11; seed++ {
		ip := randomIndependent(t, 12, seed, 0.08)
		exact, err := SolveIndependentExact(ip)
		if err != nil {
			t.Fatal(err)
		}
		lpt, err := SolveIndependentLPT(ip)
		if err != nil {
			t.Fatal(err)
		}
		chunk, err := SolveIndependentChunk(ip)
		if err != nil {
			t.Fatal(err)
		}
		const eps = 1e-9
		if lpt.Expected < exact.Expected-eps || chunk.Expected < exact.Expected-eps {
			t.Errorf("seed %d: heuristic beats exact (%v, %v vs %v)", seed, lpt.Expected, chunk.Expected, exact.Expected)
		}
		// Evaluations must match the claimed expectations.
		for _, g := range []Grouping{lpt, chunk, exact} {
			e, err := ip.Evaluate(g.Groups)
			if err != nil {
				t.Fatalf("seed %d: invalid grouping: %v", seed, err)
			}
			if !numeric.AlmostEqual(e, g.Expected, 1e-9) {
				t.Errorf("seed %d: grouping claims %v, evaluates to %v", seed, g.Expected, e)
			}
		}
		// LPT-over-all-m dominates single-m baselines by construction.
		per, _ := ip.SingleGroupPerTask()
		one, _ := ip.OneGroup()
		if lpt.Expected > per.Expected+eps || lpt.Expected > one.Expected+eps {
			t.Errorf("seed %d: LPT scan worse than trivial baselines", seed)
		}
	}
}

func TestLPTGroupingValidation(t *testing.T) {
	ip := randomIndependent(t, 5, 12, 0.05)
	if _, err := ip.LPTGrouping(0); err == nil {
		t.Error("m = 0 should fail")
	}
	if _, err := ip.LPTGrouping(6); err == nil {
		t.Error("m > n should fail")
	}
}

func TestGroupingPlanRoundTrip(t *testing.T) {
	ip := randomIndependent(t, 6, 13, 0.1)
	g, err := SolveIndependentLPT(ip)
	if err != nil {
		t.Fatal(err)
	}
	plan := g.Plan()
	if err := plan.Validate(nil); err != nil {
		t.Fatalf("grouping plan invalid: %v", err)
	}
	if plan.NumCheckpoints() != len(g.Groups) {
		t.Errorf("plan has %d checkpoints for %d groups", plan.NumCheckpoints(), len(g.Groups))
	}
	if len(plan.Order) != len(ip.Weights) {
		t.Errorf("plan covers %d tasks", len(plan.Order))
	}
}

func TestReductionForwardDirection(t *testing.T) {
	// A 3-PARTITION witness must produce a schedule meeting the bound K
	// exactly (the forward direction of the Proposition 2 proof).
	r := rng.New(21)
	in, err := partition.GenerateYes(4, 240, r)
	if err != nil {
		t.Fatal(err)
	}
	sol, ok, err := partition.Solve(in)
	if err != nil || !ok {
		t.Fatalf("planted instance unsolvable: %v", err)
	}
	ri, err := BuildReduction(in)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(ri.RiggedExponent(), 2, 1e-12) {
		t.Errorf("e^{λ(T+C)} = %v, want 2", ri.RiggedExponent())
	}
	g, err := ri.GroupingFromPartition(sol)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(g.Expected, ri.Bound, 1e-9) {
		t.Errorf("witness schedule E = %v, K = %v", g.Expected, ri.Bound)
	}
}

func TestReductionBackwardDirection(t *testing.T) {
	// Yes-instances decide yes, no-instances decide no, through exact
	// scheduling (the backward direction).
	r := rng.New(22)
	yes, err := partition.GenerateYes(4, 240, r)
	if err != nil {
		t.Fatal(err)
	}
	riYes, err := BuildReduction(yes)
	if err != nil {
		t.Fatal(err)
	}
	decision, g, err := riYes.DecideByScheduling()
	if err != nil {
		t.Fatal(err)
	}
	if !decision {
		t.Errorf("yes-instance decided no (E* = %v, K = %v)", g.Expected, riYes.Bound)
	}
	if math.Abs(riYes.GapToBound(g)) > 1e-9 {
		t.Errorf("yes-instance optimal gap = %v, want 0", riYes.GapToBound(g))
	}

	no, err := partition.GenerateNo(3, 120, r)
	if err != nil {
		t.Fatal(err)
	}
	riNo, err := BuildReduction(no)
	if err != nil {
		t.Fatal(err)
	}
	decision, g, err = riNo.DecideByScheduling()
	if err != nil {
		t.Fatal(err)
	}
	if decision {
		t.Errorf("no-instance decided yes (E* = %v, K = %v)", g.Expected, riNo.Bound)
	}
	if riNo.GapToBound(g) <= 0 {
		t.Errorf("no-instance gap = %v, want > 0", riNo.GapToBound(g))
	}
}

func TestReductionOptimalUsesTriples(t *testing.T) {
	// On a yes-instance the optimal schedule must use exactly n groups
	// (the uniqueness argument in the proof: minimum at m = n).
	r := rng.New(23)
	in, err := partition.GenerateYes(3, 120, r)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := BuildReduction(in)
	if err != nil {
		t.Fatal(err)
	}
	_, g, err := ri.DecideByScheduling()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Groups) != in.Groups() {
		t.Errorf("optimal uses %d groups, want %d", len(g.Groups), in.Groups())
	}
	for _, group := range g.Groups {
		var s float64
		for _, i := range group {
			s += ri.Problem.Weights[i]
		}
		if !numeric.AlmostEqual(s, float64(in.Target), 1e-9) {
			t.Errorf("optimal group sums to %v, want %d", s, in.Target)
		}
	}
}

func TestBuildReductionRejectsMalformed(t *testing.T) {
	if _, err := BuildReduction(partition.Instance{Items: []int{1, 2}, Target: 3}); err == nil {
		t.Error("malformed instance should be rejected")
	}
}

func TestReductionString(t *testing.T) {
	r := rng.New(24)
	in, _ := partition.GenerateYes(2, 120, r)
	ri, _ := BuildReduction(in)
	if ri.String() == "" {
		t.Error("empty String()")
	}
}
