package core

// Property-based tests (testing/quick) over the core invariants:
//   - the chain DP never loses to any randomly drawn placement;
//   - segment decomposition is a partition and its expectations add;
//   - the exact independent solver never loses to random partitions;
//   - every solver output evaluates to its claimed expectation.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/expectation"
	"repro/internal/numeric"
	"repro/internal/rng"
)

// chainFromSeed builds a small random chain problem deterministically
// from fuzz input.
func chainFromSeed(seed uint64, n int, lambda float64) *ChainProblem {
	r := rng.New(seed)
	m, _ := expectation.NewModel(lambda, r.Range(0, 2))
	cp := &ChainProblem{
		Weights:         make([]float64, n),
		Ckpt:            make([]float64, n),
		Rec:             make([]float64, n),
		InitialRecovery: r.Range(0, 1),
		Model:           m,
	}
	for i := 0; i < n; i++ {
		cp.Weights[i] = r.Range(0.1, 10)
		cp.Ckpt[i] = r.Range(0.01, 2)
		cp.Rec[i] = r.Range(0.01, 2)
	}
	return cp
}

func TestPropertyDPNeverLosesToRandomPlacement(t *testing.T) {
	f := func(seed uint64, mask uint16, nRaw uint8, lRaw float64) bool {
		n := 2 + int(nRaw%14)
		lambda := math.Abs(math.Mod(lRaw, 0.5)) + 1e-4
		cp := chainFromSeed(seed, n, lambda)
		dp, err := SolveChainDP(cp)
		if err != nil {
			return false
		}
		ck := make([]bool, n)
		for i := 0; i < n-1; i++ {
			ck[i] = mask&(1<<uint(i%16)) != 0 && (seed>>uint(i%60))&1 == 1
		}
		ck[n-1] = true
		e, err := cp.Makespan(ck)
		if err != nil {
			return false
		}
		return dp.Expected <= e+1e-9*math.Abs(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropertySegmentExpectationsAdd(t *testing.T) {
	f := func(seed uint64, mask uint16, nRaw uint8) bool {
		n := 2 + int(nRaw%14)
		cp := chainFromSeed(seed, n, 0.05)
		ck := make([]bool, n)
		for i := 0; i < n-1; i++ {
			ck[i] = mask&(1<<uint(i%16)) != 0
		}
		ck[n-1] = true
		total, err := cp.Makespan(ck)
		if err != nil {
			return false
		}
		segs, err := cp.Segments(ck)
		if err != nil {
			return false
		}
		// Segments must partition positions.
		covered := 0
		prevEnd := -1
		var sum float64
		for _, s := range segs {
			if s.Start != prevEnd+1 || s.End < s.Start {
				return false
			}
			covered += s.End - s.Start + 1
			prevEnd = s.End
			sum += cp.Model.ExpectedTime(s.Work, s.Checkpoint, s.Recovery)
		}
		return covered == n && numeric.AlmostEqual(sum, total, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropertySegmentExpectationMatchesDirect(t *testing.T) {
	// SegmentExpectation(start, end) must equal the model formula on the
	// summed weights.
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		n := 6
		cp := chainFromSeed(seed, n, 0.07)
		a := int(aRaw) % n
		b := int(bRaw) % n
		if a > b {
			a, b = b, a
		}
		var w float64
		for i := a; i <= b; i++ {
			w += cp.Weights[i]
		}
		rec := cp.InitialRecovery
		if a > 0 {
			rec = cp.Rec[a-1]
		}
		want := cp.Model.ExpectedTime(w, cp.Ckpt[b], rec)
		return numeric.AlmostEqual(cp.SegmentExpectation(a, b), want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExactIndependentNeverLosesToRandomPartition(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw%8)
		r := rng.New(seed)
		m, _ := expectation.NewModel(r.Range(0.01, 0.3), 0)
		ip := &IndependentProblem{
			Weights:    make([]float64, n),
			Checkpoint: r.Range(0.05, 1),
			Recovery:   r.Range(0.05, 1),
			Model:      m,
		}
		for i := range ip.Weights {
			ip.Weights[i] = r.Range(0.5, 8)
		}
		exact, err := SolveIndependentExact(ip)
		if err != nil {
			return false
		}
		// Random partition: assign each task a random group label.
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.IntN(n)
		}
		groupsMap := map[int][]int{}
		for i, l := range labels {
			groupsMap[l] = append(groupsMap[l], i)
		}
		var groups [][]int
		for _, g := range groupsMap {
			groups = append(groups, g)
		}
		e, err := ip.Evaluate(groups)
		if err != nil {
			return false
		}
		return exact.Expected <= e+1e-9*e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMakespanMonotoneInLambda(t *testing.T) {
	// For a fixed placement, a higher failure rate can only increase the
	// expected makespan.
	f := func(seed uint64, mask uint16) bool {
		n := 8
		cpLo := chainFromSeed(seed, n, 0.02)
		cpHi := chainFromSeed(seed, n, 0.02)
		mHi, _ := expectation.NewModel(0.2, cpLo.Model.Downtime)
		cpHi.Model = mHi
		ck := make([]bool, n)
		for i := 0; i < n-1; i++ {
			ck[i] = mask&(1<<uint(i%16)) != 0
		}
		ck[n-1] = true
		lo, err1 := cpLo.Makespan(ck)
		hi, err2 := cpHi.Makespan(ck)
		return err1 == nil && err2 == nil && hi >= lo-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVarianceAdditive(t *testing.T) {
	// MakespanVariance must equal the sum of per-segment variances.
	f := func(seed uint64, mask uint16) bool {
		n := 8
		cp := chainFromSeed(seed, n, 0.08)
		ck := make([]bool, n)
		for i := 0; i < n-1; i++ {
			ck[i] = mask&(1<<uint(i%16)) != 0
		}
		ck[n-1] = true
		v, err := cp.MakespanVariance(ck)
		if err != nil || v < 0 {
			return false
		}
		segs, err := cp.Segments(ck)
		if err != nil {
			return false
		}
		var sum float64
		for _, s := range segs {
			sum += cp.Model.Variance(s.Work, s.Checkpoint, s.Recovery)
		}
		return numeric.AlmostEqual(sum, v, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
