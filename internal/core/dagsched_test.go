package core

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/numeric"
	"repro/internal/rng"
)

func TestPlanValidate(t *testing.T) {
	g := dag.New()
	a := g.MustAddTask(dag.Task{Weight: 1})
	b := g.MustAddTask(dag.Task{Weight: 1})
	g.MustAddEdge(a, b)

	good, err := NewPlan([]int{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(g); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if got := good.Checkpoints(); len(got) != 2 {
		t.Errorf("checkpoints = %v", got)
	}

	rev := Plan{Order: []int{b, a}, CheckpointAfter: []bool{false, true}}
	if err := rev.Validate(g); err == nil {
		t.Error("dependence-violating plan accepted")
	}
	dup := Plan{Order: []int{a, a}, CheckpointAfter: []bool{false, true}}
	if err := dup.Validate(g); err == nil {
		t.Error("duplicate task accepted")
	}
	noFinal := Plan{Order: []int{a, b}, CheckpointAfter: []bool{true, false}}
	if err := noFinal.Validate(g); err == nil {
		t.Error("missing final checkpoint accepted")
	}
	short := Plan{Order: []int{a}, CheckpointAfter: []bool{true}}
	if err := short.Validate(g); err == nil {
		t.Error("incomplete plan accepted")
	}
	if _, err := NewPlan(nil); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := NewPlan([]int{0}, 5); err == nil {
		t.Error("out-of-range checkpoint position accepted")
	}
}

func TestEvaluatePlanMatchesChainDP(t *testing.T) {
	// On a chain, EvaluatePlan of the DP's plan equals the DP value.
	r := rng.New(31)
	g, err := dag.Chain(8, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	m := mustModelT(t, 0.05, 0.2)
	cp, order, err := NewChainProblem(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{Order: order, CheckpointAfter: res.CheckpointAfter}
	e, err := EvaluatePlan(m, g, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(e, res.Expected, 1e-12) {
		t.Errorf("EvaluatePlan %v ≠ DP %v", e, res.Expected)
	}
}

func TestSolveOrderDPChainEquivalence(t *testing.T) {
	// With LastTaskCosts, SolveOrderDP on the chain order must equal
	// SolveChainDP.
	r := rng.New(32)
	g, err := dag.Chain(10, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	m := mustModelT(t, 0.03, 0.1)
	cp, order, err := NewChainProblem(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	chainRes, err := SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	dagRes, err := SolveOrderDP(g, order, m, LastTaskCosts{})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(chainRes.Expected, dagRes.Expected, 1e-12) {
		t.Errorf("chain DP %v ≠ order DP %v", chainRes.Expected, dagRes.Expected)
	}
}

func TestSolveDAGValidPlans(t *testing.T) {
	r := rng.New(33)
	m := mustModelT(t, 0.02, 0.1)
	graphs := map[string]*dag.Graph{}
	fj, err := dag.ForkJoin(3, 2, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	graphs["forkjoin"] = fj
	lay, err := dag.Layered(3, 3, 0.4, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	graphs["layered"] = lay
	mon, err := dag.MontageLike(4, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	graphs["montage"] = mon

	for name, g := range graphs {
		for _, cm := range []CostModel{LastTaskCosts{}, LiveSetCosts{}} {
			res, err := SolveDAG(g, m, cm, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, cm.Name(), err)
			}
			if err := res.Plan().Validate(g); err != nil {
				t.Errorf("%s/%s: invalid plan: %v", name, cm.Name(), err)
			}
			if res.Expected <= 0 || res.Strategy == "" {
				t.Errorf("%s/%s: result %+v", name, cm.Name(), res)
			}
		}
	}
}

func TestSolveDAGExhaustiveDominates(t *testing.T) {
	// The exhaustive solver over all linearizations is at least as good
	// as the heuristic portfolio.
	r := rng.New(34)
	g, err := dag.ForkJoin(2, 2, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	m := mustModelT(t, 0.05, 0.1)
	for _, cm := range []CostModel{LastTaskCosts{}, LiveSetCosts{}} {
		heur, err := SolveDAG(g, m, cm, nil)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := SolveDAGExhaustive(g, m, cm, 0)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Expected > heur.Expected+1e-9 {
			t.Errorf("%s: exhaustive %v worse than heuristic %v", cm.Name(), exact.Expected, heur.Expected)
		}
		if err := exact.Plan().Validate(g); err != nil {
			t.Errorf("%s: exhaustive plan invalid: %v", cm.Name(), err)
		}
	}
}

func TestLiveSetCostsSemantics(t *testing.T) {
	// Chain a→b: after executing a (position 0), a's output is live;
	// after b (sink), b is live but a is not.
	g := dag.New()
	a := g.MustAddTask(dag.Task{Weight: 1, Checkpoint: 10, Recovery: 100})
	b := g.MustAddTask(dag.Task{Weight: 1, Checkpoint: 20, Recovery: 200})
	g.MustAddEdge(a, b)
	order := []int{a, b}
	lv := LiveSetCosts{}
	if got := lv.CheckpointCost(g, order, 0, 0); got != 10 {
		t.Errorf("ckpt after a = %v, want 10", got)
	}
	if got := lv.CheckpointCost(g, order, 0, 1); got != 20 {
		t.Errorf("ckpt after b = %v, want 20 (a retired)", got)
	}
	if got := lv.RecoveryCost(g, order, 1); got != 200 {
		t.Errorf("recovery after b = %v, want 200", got)
	}

	// Fork a→(b, c): after a and b (position 1), a is still live (c
	// pending) and b is a sink → both live.
	g2 := dag.New()
	a2 := g2.MustAddTask(dag.Task{Weight: 1, Checkpoint: 1, Recovery: 1})
	b2 := g2.MustAddTask(dag.Task{Weight: 1, Checkpoint: 2, Recovery: 2})
	c2 := g2.MustAddTask(dag.Task{Weight: 1, Checkpoint: 4, Recovery: 4})
	g2.MustAddEdge(a2, b2)
	g2.MustAddEdge(a2, c2)
	order2 := []int{a2, b2, c2}
	if got := lv.CheckpointCost(g2, order2, 0, 1); got != 1+2 {
		t.Errorf("fork ckpt after b = %v, want 3", got)
	}
	if got := lv.CheckpointCost(g2, order2, 0, 2); got != 2+4 {
		t.Errorf("fork ckpt after c = %v, want 6 (a retired, b+c sinks)", got)
	}
}

func TestLastTaskCostsSemantics(t *testing.T) {
	g := dag.New()
	a := g.MustAddTask(dag.Task{Weight: 1, Checkpoint: 3, Recovery: 5})
	b := g.MustAddTask(dag.Task{Weight: 1, Checkpoint: 7, Recovery: 9})
	g.MustAddEdge(a, b)
	lc := LastTaskCosts{R0: 2}
	order := []int{a, b}
	if lc.CheckpointCost(g, order, 0, 1) != 7 {
		t.Error("last-task checkpoint cost wrong")
	}
	if lc.RecoveryCost(g, order, 0) != 5 {
		t.Error("last-task recovery cost wrong")
	}
	if lc.InitialRecovery() != 2 {
		t.Error("initial recovery wrong")
	}
}

func TestStrategiesProduceValidOrders(t *testing.T) {
	r := rng.New(35)
	g, err := dag.Layered(3, 4, 0.5, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range DefaultStrategies() {
		order, err := s.Order(g)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		plan, err := NewPlan(order)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := plan.Validate(g); err != nil {
			t.Errorf("%s produced invalid order: %v", s.Name, err)
		}
	}
}

func TestSolveDAGErrors(t *testing.T) {
	m := mustModelT(t, 0.1, 0)
	if _, err := SolveDAG(dag.New(), m, LastTaskCosts{}, nil); err == nil {
		t.Error("empty graph should fail")
	}
	g := dag.New()
	g.MustAddTask(dag.Task{Weight: 1})
	if _, err := SolveOrderDP(g, nil, m, LastTaskCosts{}); err == nil {
		t.Error("empty order should fail")
	}
	if _, err := SolveOrderDP(g, []int{0, 0}, m, LastTaskCosts{}); err == nil {
		t.Error("wrong-length order should fail")
	}
}
