package core

import (
	"fmt"

	"repro/internal/expectation"
)

// This file holds the monotone-matrix arms of the chain placement DPs:
// near-linear exact solvers for instances whose segment-cost matrix is
// certified totally monotone (concave quadrangle inequality, see
// expectation.CertifyQuadrangle). SolveChainDP and SolveChainDPBounded
// auto-dispatch onto them; SolveChainDPMonotone exposes the arm
// directly and refuses uncertified instances.
//
//   - solveChainMonotoneRows: the self-referential suffix recurrence
//     E(x) = min_j cost(x, j) + E(j+1) solved with the concave
//     least-weight-subsequence candidate algorithm (Hirschberg–Larmore /
//     Galil–Giancarlo family): a stack of candidates, each owning the
//     interval of future rows where it is the incumbent minimum, with
//     binary search for the single crossover the quadrangle inequality
//     guarantees. O(n log n) cost-oracle evaluations worst case, O(n)
//     when checkpoints are frequent.
//   - boundedMonotoneLayers: the budgeted recurrence
//     E_k(x) = min_j cost(x, j) + E_{k−1}(j+1) — each layer's tails come
//     from the previous layer, so rows form an offline totally monotone
//     matrix and divide-and-conquer over the monotone argmins solves a
//     layer in O(n log n), O(k·n log n) in total.
//
// Both arms search with the kernel arithmetic (the same Segment oracle
// the pruned kernel scan compares) and re-derive the reported Expected
// through the reference arithmetic of Model.ExpectedTime, so a matching
// placement yields a bit-identical value. Placements match the kernel
// arm's except on ulp-scale floating-point decision ties (the same
// caveat SolveChainDP documents for kernel-vs-dense), because both
// resolve exact ties toward the earliest end position.

// ChainArm identifies which solver arm produced a chain DP result.
type ChainArm uint8

const (
	// ArmKernel is the pruned kernel scan (exact monotone bound, O(n²)
	// worst case) — the arm every instance is eligible for.
	ArmKernel ChainArm = iota
	// ArmMonotone is the totally-monotone-matrix arm, dispatched only on
	// instances certified by expectation.CertifyQuadrangle.
	ArmMonotone
	// ArmDense is the unaccelerated Proposition 3 loop (reference only;
	// the dispatcher never selects it).
	ArmDense
)

// String names the arm for stats reporting and CLI output.
func (a ChainArm) String() string {
	switch a {
	case ArmKernel:
		return "kernel"
	case ArmMonotone:
		return "monotone"
	case ArmDense:
		return "dense"
	}
	return "invalid"
}

// SolveChainDPMonotone computes the Proposition 3 optimum with the
// monotone-matrix arm. It certifies the instance first and fails with
// an error naming the broken condition when the segment-cost matrix is
// not totally monotone — use SolveChainDP for the auto-dispatching
// portfolio that falls back to the kernel arm instead.
func SolveChainDPMonotone(cp *ChainProblem) (ChainResult, error) {
	res, _, err := SolveChainDPMonotoneStats(cp)
	return res, err
}

// SolveChainDPMonotoneStats is SolveChainDPMonotone, additionally
// reporting the oracle-evaluation count.
func SolveChainDPMonotoneStats(cp *ChainProblem) (ChainResult, DPStats, error) {
	if err := cp.Validate(); err != nil {
		return ChainResult{}, DPStats{}, err
	}
	kern, err := cp.kernel()
	if err != nil {
		return ChainResult{}, DPStats{}, err
	}
	cert := kern.CertifyQuadrangle()
	if !cert.Certified {
		return ChainResult{}, DPStats{}, fmt.Errorf("core: instance not certified totally monotone (%s); use SolveChainDP", cert.Reason)
	}
	next, evals := solveChainMonotoneRows(kern)
	stats := DPStats{Transitions: evals, Arm: ArmMonotone, Certified: true}
	return chainResultFromNext(cp, next), stats, nil
}

// span is one candidate's claim in the concave-LWS stack: end position
// j is the incumbent minimum for every row in [lo, hi]. The stack keeps
// lo strictly decreasing toward the top; the top span always starts at
// row 0, and together the live spans cover every row the scan has yet
// to visit.
type span struct {
	j, lo, hi int
}

// solveChainMonotoneRows runs the candidate algorithm over the kernel
// oracle, returning the per-row decisions and the number of oracle
// evaluations. Rows are processed right to left; the candidate ending
// at j becomes available at row j and, by total monotonicity, beats an
// older (larger-j) candidate on a down-set of rows — the single
// crossover the binary search locates. Exact value ties resolve toward
// the smaller end position, matching the dense scan's earliest-j rule.
func solveChainMonotoneRows(kern *expectation.SegmentKernel) ([]int, int64) {
	n := kern.Len()
	best := make([]float64, n+1)
	next := make([]int, n)
	var evals int64
	val := func(x, j int) float64 {
		evals++
		return kern.Segment(x, j) + best[j+1]
	}
	// wins reports whether the new candidate jn beats the incumbent jo
	// at row x (ties to jn: jn < jo always holds here).
	wins := func(x, jn, jo int) bool {
		return val(x, jn) <= val(x, jo)
	}
	// maxWin returns the largest row in [lo, hi] where candidate jn
	// still beats jo, or lo−1 when it never does. The win rows form a
	// down-set (single crossover), and the crossover typically sits just
	// below hi — segments are short when checkpoints are frequent — so
	// it gallops down from hi with doubling steps before binary-searching
	// the bracket: O(log(hi − t)) oracle calls instead of O(log(hi − lo)).
	maxWin := func(lo, hi, jn, jo int) int {
		if lo > hi {
			return lo - 1
		}
		probe, step, lastLose := hi, 1, hi+1
		for probe >= lo && !wins(probe, jn, jo) {
			lastLose = probe
			probe -= step
			step <<= 1
		}
		t := probe // won there, or < lo when no win found yet
		blo := max(probe+1, lo)
		if probe < lo {
			t = lo - 1
		}
		for bhi := lastLose - 1; blo <= bhi; {
			mid := int(uint(blo+bhi) >> 1)
			if wins(mid, jn, jo) {
				t, blo = mid, mid+1
			} else {
				bhi = mid - 1
			}
		}
		return t
	}
	st := make([]span, 0, 16)
	for x := n - 1; x >= 0; x-- {
		// rowVal/rowJ carry row x's minimum when the insertion already
		// compared candidates at row x itself, saving the re-evaluation.
		rowJ := -1
		var rowVal float64
		// Insert candidate j = x, the smallest end position so far: it
		// can only win a down-set [0, t] of rows, so it competes upward
		// from the stack top (the lowest-row span).
		if len(st) == 0 {
			st = append(st, span{j: x, lo: 0, hi: x})
		} else {
			wonUpTo := -1
			for len(st) > 0 {
				top := st[len(st)-1]
				hiEff := min(top.hi, x)
				vn, vo := val(hiEff, x), val(hiEff, top.j)
				if vn <= vo {
					wonUpTo = hiEff
					if hiEff == x {
						// Wins at the current row → wins every future row;
						// retire every span a future row could still see.
						rowJ, rowVal = x, vn
						for len(st) > 0 && st[len(st)-1].lo <= x {
							st = st[:len(st)-1]
						}
						break
					}
					st = st[:len(st)-1]
					continue
				}
				if hiEff == x {
					// Loses at the current row → the incumbent still owns it.
					rowJ, rowVal = top.j, vo
				}
				// Loses at hiEff: the crossover sits inside [top.lo, hiEff).
				if t := maxWin(top.lo, hiEff-1, x, top.j); t >= top.lo {
					st[len(st)-1].lo = t + 1
					if t > wonUpTo {
						wonUpTo = t
					}
				}
				break
			}
			if len(st) == 0 {
				wonUpTo = x
			}
			if wonUpTo >= 0 {
				st = append(st, span{j: x, lo: 0, hi: wonUpTo})
			}
		}
		if rowJ < 0 {
			// The owner of row x is the unique live span containing it:
			// the stack's lo values decrease toward the top, so
			// binary-search for the first (deepest) span with lo ≤ x.
			lo, hi, owner := 0, len(st)-1, len(st)-1
			for lo <= hi {
				mid := int(uint(lo+hi) >> 1)
				if st[mid].lo <= x {
					owner, hi = mid, mid-1
				} else {
					lo = mid + 1
				}
			}
			rowJ = st[owner].j
			rowVal = val(x, rowJ)
		}
		best[x] = rowVal
		next[x] = rowJ
	}
	return next, evals
}

// boundedMonotoneLayers runs the budgeted DP on a certified instance:
// layer k's row minima are computed by divide-and-conquer over the
// monotone argmins (the previous layer's values are fixed, so each
// layer is an offline totally monotone matrix). Layer 1 is the single
// mandatory segment to the end, filled directly like the kernel arm.
// Returns per-layer values and decisions plus the oracle-evaluation
// count. Exact value ties resolve toward the earliest end position
// (the kernel arm's layered scan keeps the single-segment option on
// ties instead — another ulp-scale-tie-only divergence).
func boundedMonotoneLayers(kern *expectation.SegmentKernel, maxCheckpoints int) ([][]float64, [][]int, int64) {
	n := kern.Len()
	best := make([][]float64, maxCheckpoints+1)
	next := make([][]int, maxCheckpoints+1)
	var evals int64
	for k := range best {
		best[k] = make([]float64, n+1)
		next[k] = make([]int, n)
		for x := 0; x < n; x++ {
			best[k][x] = infinity
			next[k][x] = -1
		}
	}
	for x := 0; x < n; x++ {
		evals++
		best[1][x] = kern.Segment(x, n-1)
		next[1][x] = n - 1
	}
	slack := kern.Slack()
	for k := 2; k <= maxCheckpoints; k++ {
		tail := best[k-1]
		cur, nxt := best[k], next[k]
		// eval is the layer's matrix entry: segment [x, j] plus the
		// budget-(k−1) tail (tail[n] = 0 covers the single-segment row).
		eval := func(x, j int) float64 {
			evals++
			return kern.Segment(x, j) + tail[j+1]
		}
		var solve func(xlo, xhi, jlo, jhi int)
		solve = func(xlo, xhi, jlo, jhi int) {
			if xlo > xhi {
				return
			}
			xm := int(uint(xlo+xhi) >> 1)
			lo := max(jlo, xm)
			bestE, bestJ := infinity, lo
			for j := lo; j <= jhi; j++ {
				if v := eval(xm, j); v < bestE {
					bestE, bestJ = v, j
				}
				// The kernel's exact monotone bound applies per row just
				// like in prunedRow: tails are nonnegative, so once the
				// segment term alone exceeds the incumbent (with slack) no
				// later candidate can strictly improve — pruning never
				// changes the leftmost argmin.
				if j+1 <= jhi && kern.Bound(xm, j+1) >= bestE*slack {
					break
				}
			}
			cur[xm], nxt[xm] = bestE, bestJ
			solve(xlo, xm-1, jlo, bestJ)
			solve(xm+1, xhi, bestJ, jhi)
		}
		solve(0, n-1, 0, n-1)
	}
	return best, next, evals
}

// chainResultFromNext reconstructs the checkpoint vector from per-row
// decisions and re-derives the value through the reference arithmetic.
func chainResultFromNext(cp *ChainProblem, next []int) ChainResult {
	n := cp.Len()
	ck := make([]bool, n)
	for x := 0; x < n; {
		ck[next[x]] = true
		x = next[x] + 1
	}
	return ChainResult{Expected: cp.expectedAlong(next), CheckpointAfter: ck}
}
