// Package numeric provides the numerical building blocks shared by the
// checkpoint-scheduling library: numerically stable exponential helpers,
// the Lambert W function, root finding, adaptive quadrature, and
// compensated summation.
//
// All expectation formulas in the paper are built from terms of the form
// e^{λx} − 1; evaluating them through Expm1 keeps full precision for the
// practically important regime λx ≪ 1 (failures much rarer than tasks).
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// MaxExpArg is the largest argument for which math.Exp does not overflow
// to +Inf. Instances with λ(W+C) beyond this value have astronomically
// large expected makespans and are reported as infinite.
const MaxExpArg = 709.0

// ErrNoBracket is returned by root finders when the supplied interval does
// not bracket a sign change.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget without meeting its tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

// Expm1 returns e^x − 1 computed without cancellation for small x.
func Expm1(x float64) float64 { return math.Expm1(x) }

// ExpRatio returns (e^a − 1)/(e^b − 1) computed stably. For small a and b
// the ratio tends to a/b; computing it naively loses all precision.
func ExpRatio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return math.Expm1(a) / math.Expm1(b)
}

// XOverExpm1 returns x / (e^x − 1), extended by continuity to 1 at x = 0.
// This is the shape of the E[Tlost] correction term in Equation 4.
func XOverExpm1(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x / math.Expm1(x)
}

// SafeExp returns e^x, or +Inf when x exceeds MaxExpArg. It never panics.
func SafeExp(x float64) float64 {
	if x > MaxExpArg {
		return math.Inf(1)
	}
	return math.Exp(x)
}

// LambertW0 returns the principal branch W₀(x) of the Lambert W function,
// defined for x ≥ −1/e, i.e. the solution w ≥ −1 of w·e^w = x.
//
// The optimal chunk size of the divisible-load checkpointing problem (and
// the stationarity condition g'(m) = 0 in the proof of Proposition 2) is
// expressed through W₀; see expectation.OptimalChunk.
func LambertW0(x float64) (float64, error) {
	const minArg = -1.0 / math.E
	if x < minArg-1e-15 || math.IsNaN(x) {
		return math.NaN(), fmt.Errorf("numeric: LambertW0 argument %v < -1/e", x)
	}
	if x < minArg {
		x = minArg
	}
	switch {
	case x == 0:
		return 0, nil
	case math.IsInf(x, 1):
		return math.Inf(1), nil
	}

	// Initial guess: series near the branch point, log1p in the middle
	// range, asymptotic expansion far away.
	var w float64
	switch {
	case x < -0.25:
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 + p - p*p/3 + 11.0/72.0*p*p*p
	case x < 3:
		w = math.Log1p(x) // exact at 0, within ~30% on (−0.25, 3)
	default:
		l1 := math.Log(x)
		l2 := math.Log(l1)
		w = l1 - l2 + l2/l1
	}

	// Halley iteration.
	for i := 0; i < 100; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		wp1 := w + 1
		if wp1 == 0 {
			break // derivative singularity at the branch point
		}
		denom := ew*wp1 - (w+2)*f/(2*wp1)
		if denom == 0 || math.IsNaN(denom) {
			break
		}
		dw := f / denom
		w -= dw
		if math.Abs(dw) <= 1e-14*(1+math.Abs(w)) {
			return w, nil
		}
	}
	// Accept the last iterate if the residual is already tiny (happens at
	// the branch point where derivatives vanish).
	if math.Abs(w*math.Exp(w)-x) <= 1e-9*(1+math.Abs(x)) {
		return w, nil
	}
	return w, ErrNoConverge
}

// Bisect finds a root of f in [a, b] to within tol using bisection.
// f(a) and f(b) must have opposite signs.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2, ErrNoConverge
}

// Newton finds a root of f starting from x0 using Newton's method with the
// supplied derivative. It falls back to returning ErrNoConverge after 100
// iterations.
func Newton(f, fprime func(float64) float64, x0, tol float64) (float64, error) {
	x := x0
	for i := 0; i < 100; i++ {
		fx := f(x)
		d := fprime(x)
		if d == 0 {
			return x, ErrNoConverge
		}
		step := fx / d
		x -= step
		if math.Abs(step) <= tol*(1+math.Abs(x)) {
			return x, nil
		}
	}
	return x, ErrNoConverge
}

// MinimizeUnimodal performs golden-section search for the minimum of a
// unimodal function on [a, b], returning the argmin.
func MinimizeUnimodal(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return a + (b-a)/2
}

// ArgminInt scans f over the integer range [lo, hi] (inclusive) and returns
// the argmin and the minimum value. It is used for integer checkpoint-count
// and processor-count optimization where the objective is cheap.
func ArgminInt(f func(int) float64, lo, hi int) (int, float64) {
	best, bestV := lo, f(lo)
	for i := lo + 1; i <= hi; i++ {
		if v := f(i); v < bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// Integrate approximates ∫_a^b f using adaptive Simpson quadrature with
// absolute tolerance tol.
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	whole := (b - a) / 6 * (fa + 4*fc + fb)
	return adaptiveSimpson(f, a, b, fa, fb, fc, whole, tol, 50)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fb, fc, whole, tol float64, depth int) float64 {
	c := (a + b) / 2
	l, r := (a+c)/2, (c+b)/2
	fl, fr := f(l), f(r)
	left := (c - a) / 6 * (fa + 4*fl + fc)
	right := (b - c) / 6 * (fc + 4*fr + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpson(f, a, c, fa, fc, fl, left, tol/2, depth-1) +
		adaptiveSimpson(f, c, b, fc, fb, fr, right, tol/2, depth-1)
}

// KahanSum accumulates float64 values with compensated (Kahan) summation,
// keeping Monte-Carlo averages over millions of samples accurate.
// The zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64
	n   int64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
	k.n++
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// Count returns the number of accumulated values.
func (k *KahanSum) Count() int64 { return k.n }

// Mean returns the compensated mean, or 0 when empty.
func (k *KahanSum) Mean() float64 {
	if k.n == 0 {
		return 0
	}
	return k.sum / float64(k.n)
}

// Linspace returns n evenly spaced points from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Logspace returns n logarithmically spaced points from lo to hi inclusive.
// lo and hi must be positive.
func Logspace(lo, hi float64, n int) []float64 {
	pts := Linspace(math.Log(lo), math.Log(hi), n)
	for i, p := range pts {
		pts[i] = math.Exp(p)
	}
	if n >= 1 {
		pts[0] = lo
	}
	if n >= 2 {
		pts[n-1] = hi
	}
	return pts
}

// AlmostEqual reports whether a and b agree to within relative tolerance
// rel (with an absolute floor of rel for values near zero).
func AlmostEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*math.Max(scale, 1)
}

// RelErr returns |a−b| / max(|b|, tiny); b is the reference value.
func RelErr(a, b float64) float64 {
	den := math.Abs(b)
	if den < 1e-300 {
		den = 1e-300
	}
	return math.Abs(a-b) / den
}
