package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLambertW0Identity(t *testing.T) {
	// W(x)·e^{W(x)} = x across the domain.
	xs := []float64{-1 / math.E, -0.367, -0.2, -1e-6, 0, 1e-9, 0.1, 0.5, 1, math.E, 10, 1e3, 1e8}
	for _, x := range xs {
		w, err := LambertW0(x)
		if err != nil {
			t.Fatalf("LambertW0(%v): %v", x, err)
		}
		got := w * math.Exp(w)
		if !AlmostEqual(got, x, 1e-9) {
			t.Errorf("LambertW0(%v) = %v; w·e^w = %v, want %v", x, w, got, x)
		}
	}
}

func TestLambertW0KnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0},
		{math.E, 1},
		{2 * math.E * math.E, 2},
		{-1 / math.E, -1},
	}
	for _, c := range cases {
		w, err := LambertW0(c.x)
		if err != nil {
			t.Fatalf("LambertW0(%v): %v", c.x, err)
		}
		if math.Abs(w-c.want) > 1e-7 {
			t.Errorf("LambertW0(%v) = %v, want %v", c.x, w, c.want)
		}
	}
}

func TestLambertW0OutOfDomain(t *testing.T) {
	if _, err := LambertW0(-1); err == nil {
		t.Error("LambertW0(-1) should fail: below -1/e")
	}
	if _, err := LambertW0(math.NaN()); err == nil {
		t.Error("LambertW0(NaN) should fail")
	}
}

func TestLambertW0Monotone(t *testing.T) {
	prev := math.Inf(-1)
	for _, x := range Linspace(-1/math.E+1e-9, 10, 500) {
		w, err := LambertW0(x)
		if err != nil {
			t.Fatalf("LambertW0(%v): %v", x, err)
		}
		if w < prev-1e-12 {
			t.Fatalf("LambertW0 not monotone at x=%v: %v < %v", x, w, prev)
		}
		prev = w
	}
}

func TestXOverExpm1(t *testing.T) {
	if got := XOverExpm1(0); got != 1 {
		t.Errorf("XOverExpm1(0) = %v, want 1", got)
	}
	// Compare against direct evaluation where it is stable.
	for _, x := range []float64{0.5, 1, 2, 10} {
		want := x / (math.Exp(x) - 1)
		if got := XOverExpm1(x); !AlmostEqual(got, want, 1e-12) {
			t.Errorf("XOverExpm1(%v) = %v, want %v", x, got, want)
		}
	}
	// Small-x limit: ≈ 1 − x/2.
	x := 1e-12
	if got := XOverExpm1(x); math.Abs(got-1) > 1e-9 {
		t.Errorf("XOverExpm1(%v) = %v, want ≈ 1", x, got)
	}
}

func TestSafeExp(t *testing.T) {
	if got := SafeExp(1); !AlmostEqual(got, math.E, 1e-12) {
		t.Errorf("SafeExp(1) = %v", got)
	}
	if got := SafeExp(MaxExpArg + 1); !math.IsInf(got, 1) {
		t.Errorf("SafeExp(overflow) = %v, want +Inf", got)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("Bisect root = %v, want √2", root)
	}
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); err == nil {
		t.Error("Bisect should fail without a bracket")
	}
}

func TestNewton(t *testing.T) {
	root, err := Newton(
		func(x float64) float64 { return math.Exp(x) - 3 },
		func(x float64) float64 { return math.Exp(x) },
		1, 1e-12)
	if err != nil {
		t.Fatalf("Newton: %v", err)
	}
	if math.Abs(root-math.Log(3)) > 1e-10 {
		t.Errorf("Newton root = %v, want ln 3", root)
	}
}

func TestMinimizeUnimodal(t *testing.T) {
	argmin := MinimizeUnimodal(func(x float64) float64 { return (x - 3) * (x - 3) }, 0, 10, 1e-9)
	if math.Abs(argmin-3) > 1e-6 {
		t.Errorf("MinimizeUnimodal = %v, want 3", argmin)
	}
}

func TestArgminInt(t *testing.T) {
	arg, val := ArgminInt(func(i int) float64 { return float64((i - 7) * (i - 7)) }, 1, 20)
	if arg != 7 || val != 0 {
		t.Errorf("ArgminInt = (%d, %v), want (7, 0)", arg, val)
	}
}

func TestIntegrate(t *testing.T) {
	// ∫₀¹ x² dx = 1/3.
	got := Integrate(func(x float64) float64 { return x * x }, 0, 1, 1e-10)
	if math.Abs(got-1.0/3.0) > 1e-8 {
		t.Errorf("Integrate x² = %v, want 1/3", got)
	}
	// ∫₀^π sin = 2.
	got = Integrate(math.Sin, 0, math.Pi, 1e-10)
	if math.Abs(got-2) > 1e-8 {
		t.Errorf("Integrate sin = %v, want 2", got)
	}
}

func TestKahanSum(t *testing.T) {
	var k KahanSum
	const n = 1_000_000
	for i := 0; i < n; i++ {
		k.Add(0.1)
	}
	if k.Count() != n {
		t.Fatalf("Count = %d, want %d", k.Count(), n)
	}
	if math.Abs(k.Sum()-100000) > 1e-6 {
		t.Errorf("Kahan sum drifted: %v", k.Sum())
	}
	if math.Abs(k.Mean()-0.1) > 1e-12 {
		t.Errorf("Kahan mean = %v, want 0.1", k.Mean())
	}
}

func TestKahanEmpty(t *testing.T) {
	var k KahanSum
	if k.Mean() != 0 || k.Sum() != 0 || k.Count() != 0 {
		t.Error("zero-value KahanSum should be empty")
	}
}

func TestLinspace(t *testing.T) {
	pts := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(pts) != len(want) {
		t.Fatalf("len = %d, want %d", len(pts), len(want))
	}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1: %v", got)
	}
	if got := Linspace(0, 1, 0); got != nil {
		t.Errorf("Linspace n=0: %v", got)
	}
}

func TestLogspace(t *testing.T) {
	pts := Logspace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if !AlmostEqual(pts[i], want[i], 1e-12) {
			t.Errorf("Logspace[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(11, 10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr(11, 10) = %v", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Errorf("RelErr(0, 0) = %v", got)
	}
}

func TestExpRatioSmallArgs(t *testing.T) {
	// (e^a−1)/(e^b−1) → a/b as a, b → 0.
	got := ExpRatio(1e-14, 2e-14)
	if math.Abs(got-0.5) > 1e-6 {
		t.Errorf("ExpRatio tiny args = %v, want 0.5", got)
	}
	if !math.IsInf(ExpRatio(1, 0), 1) {
		t.Error("ExpRatio(_, 0) should be +Inf")
	}
}

func TestLambertW0IdentityProperty(t *testing.T) {
	// Property: for any u ≥ −1, LambertW0(u·e^u) = u.
	f := func(raw float64) bool {
		u := math.Mod(math.Abs(raw), 20) - 1 // u ∈ [−1, 19)
		x := u * math.Exp(u)
		w, err := LambertW0(x)
		if err != nil {
			return false
		}
		return math.Abs(w-u) <= 1e-7*(1+math.Abs(u))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKahanMatchesNaiveProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var k KahanSum
		naive := 0.0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip non-finite inputs
			}
			x = math.Mod(x, 1e6)
			k.Add(x)
			naive += x
		}
		return AlmostEqual(k.Sum(), naive, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
