package numeric

import (
	"math"
	"testing"
)

func TestExpScaledMatchesExp(t *testing.T) {
	// Across the representable range of math.Exp, the scaled pair must
	// reconstruct e^x to ~ulp accuracy.
	for x := -700.0; x <= 700; x += 0.37 {
		frac, exp := ExpScaled(x)
		if frac < 1 || frac >= 2 {
			t.Fatalf("ExpScaled(%v) frac = %v out of [1,2)", x, frac)
		}
		got := math.Ldexp(frac, exp)
		want := math.Exp(x)
		if RelErr(got, want) > 1e-14 {
			t.Fatalf("ExpScaled(%v) = %v·2^%d = %v, want %v (rel %v)", x, frac, exp, got, want, RelErr(got, want))
		}
	}
}

func TestExpScaledBeyondOverflow(t *testing.T) {
	// Above the exp overflow threshold the pair still represents the
	// value: combining with a matching negative argument recovers the
	// ratio exactly where math.Exp alone would return +Inf.
	for _, d := range []float64{0, 0.5, 3, 100, 700} {
		hi := 5000.0
		fh, eh := ExpScaled(hi + d)
		fl, el := ExpScaled(-hi)
		got := LdexpProduct(fh*fl, eh+el)
		want := math.Exp(d)
		if RelErr(got, want) > 1e-12 {
			t.Fatalf("exp(%v) via scaled pair = %v, want %v", d, got, want)
		}
	}
}

func TestExpScaledSpecials(t *testing.T) {
	if f, _ := ExpScaled(math.NaN()); !math.IsNaN(f) {
		t.Errorf("ExpScaled(NaN) frac = %v", f)
	}
	if f, _ := ExpScaled(math.Inf(1)); !math.IsInf(f, 1) {
		t.Errorf("ExpScaled(+Inf) frac = %v", f)
	}
	if f, _ := ExpScaled(math.Inf(-1)); f != 0 {
		t.Errorf("ExpScaled(-Inf) frac = %v", f)
	}
	// The cap sentinel keeps huge arguments ordered and combinable.
	f, e := ExpScaled(1e12)
	if LdexpProduct(f, e) != math.Inf(1) {
		t.Errorf("huge argument should saturate to +Inf, got %v·2^%d", f, e)
	}
	f, e = ExpScaled(-1e12)
	if LdexpProduct(f, e) != 0 {
		t.Errorf("huge negative argument should saturate to 0, got %v·2^%d", f, e)
	}
}

func TestLdexpProductSaturation(t *testing.T) {
	if got := LdexpProduct(1.5, 2000); !math.IsInf(got, 1) {
		t.Errorf("overflow exponent: got %v", got)
	}
	if got := LdexpProduct(1.5, -2000); got != 0 {
		t.Errorf("underflow exponent: got %v", got)
	}
	if got := LdexpProduct(1.5, 3); got != 12 {
		t.Errorf("LdexpProduct(1.5, 3) = %v, want 12", got)
	}
	// Power-of-two scaling is exact: reconstruction equals math.Ldexp.
	for e := -1080; e <= 1023; e += 7 {
		if got, want := LdexpProduct(1.75, e), math.Ldexp(1.75, e); got != want {
			t.Fatalf("LdexpProduct(1.75, %d) = %v, want %v", e, got, want)
		}
	}
}
