package numeric

import "math"

// This file implements the scaled-exponential representation used by the
// segment-expectation kernel (internal/expectation): e^x is carried as a
// (frac, exp) pair with e^x = frac·2^exp and frac ∈ [1, 2), so products of
// exponentials reduce to one float multiply plus integer exponent
// addition — no overflow, no underflow, and no transcendental call at
// combination time.

// Cody–Waite split of ln 2, as used by the libm exp reduction: Ln2Hi
// carries the high bits with enough trailing zeros that k·Ln2Hi is exact
// for |k| < 2^20, and Ln2Lo carries the remainder.
const (
	ln2Hi  = 6.93147180369123816490e-01
	ln2Lo  = 1.90821492927058770002e-10
	invLn2 = 1.44269504088896338700e+00
)

// expScaledCap bounds the argument reduction: beyond |x| ≥ expScaledCap
// the exact exponent no longer matters (e^x is beyond ±2^(2^29), i.e.
// astronomically past every float64), so ExpScaled clamps to a sentinel
// pair with exponent ±ExpScaledSatExp.
const expScaledCap = float64(1<<29) * 0.6931471805599453

// ExpScaledSatExp is the sentinel exponent of a saturated ExpScaled
// pair (|x| ≥ ~3.7e8). It exceeds every exponent a non-saturated pair
// can carry (at most ~2^29·ln2/ln2 + 1 < 2^30), so callers can detect
// saturation by comparing exponents against ±ExpScaledSatExp.
//
// Saturated pairs order and saturate correctly on their own, but the
// clamp discards the argument's exact magnitude: combining TWO
// saturated pairs of opposite sign cancels their sentinel exponents and
// yields garbage. Callers pairing exponentials that can both saturate
// must detect that case and fall back to evaluating the difference
// directly (see expectation.SegmentKernel).
const ExpScaledSatExp = 1 << 30

// ExpScaled returns (frac, exp) with e^x = frac·2^exp and frac ∈ [1, 2),
// for any finite x — the pair never overflows or underflows. Combine
// pairs with LdexpProduct.
//
// Accuracy: the reduction r = x − k·ln2 uses the Cody–Waite split, so the
// result is within ~2 ulps of e^x for |x| ≤ 2^20·ln2 ≈ 7.3e5; beyond
// that the rounding of k·ln2Hi grows the relative error linearly in |x|
// (about |x|·2^-52). Callers that prune on compared pairs must widen
// their slack accordingly (see expectation.SegmentKernel).
//
// Special cases: ExpScaled(NaN) = (NaN, 0), ExpScaled(+Inf) = (+Inf, 0),
// ExpScaled(−Inf) = (0, 0).
func ExpScaled(x float64) (float64, int) {
	switch {
	case math.IsNaN(x):
		return math.NaN(), 0
	case math.IsInf(x, 1):
		return math.Inf(1), 0
	case math.IsInf(x, -1):
		return 0, 0
	case x > expScaledCap:
		return 1, ExpScaledSatExp
	case x < -expScaledCap:
		return 1, -ExpScaledSatExp
	}
	k := math.Round(x * invLn2)
	r := (x - k*ln2Hi) - k*ln2Lo
	m := math.Exp(r) // r ∈ [−ln2/2, ln2/2] (plus reduction slop) → m near 1
	frac, e := math.Frexp(m)
	return frac * 2, int(k) + e - 1
}

// ldexpMax is the largest combined exponent a finite float64 product of
// two in-range fractions (frac ∈ [1,2), product ∈ [1,4)) can carry.
const ldexpMax = 1023

// pow2 holds 2^e for e ∈ [ldexpMin, ldexpMax]; LdexpProduct is a table
// lookup plus one multiply, an order of magnitude cheaper than math.Ldexp
// in the DP inner loop.
const ldexpMin = -1080

var pow2 [ldexpMax - ldexpMin + 1]float64

func init() {
	for e := range pow2 {
		pow2[e] = math.Ldexp(1, e+ldexpMin)
	}
}

// LdexpProduct returns frac·2^exp, where frac is the product of two
// ExpScaled fractions (so frac ∈ [1, 4), or a special value) and exp the
// sum of their exponents. Out-of-range exponents saturate to +Inf / 0,
// matching the true magnitude of the represented exponential. Scaling by
// an in-range power of two is exact (no rounding), so ordering of
// represented values is preserved bit-for-bit.
func LdexpProduct(frac float64, exp int) float64 {
	if exp > ldexpMax {
		if frac == 0 || math.IsNaN(frac) {
			return frac * math.Inf(1)
		}
		return math.Inf(1)
	}
	if exp < ldexpMin {
		if math.IsInf(frac, 1) || math.IsNaN(frac) {
			return frac * 0
		}
		return 0
	}
	return frac * pow2[exp-ldexpMin]
}
