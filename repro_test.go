package repro_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro"
	"repro/internal/netsim"
	"repro/internal/store"
)

func buildChain(t *testing.T) *repro.Graph {
	t.Helper()
	g := repro.NewGraph()
	prev := -1
	for _, task := range []repro.Task{
		{Name: "a", Weight: 5, Checkpoint: 0.2, Recovery: 0.2},
		{Name: "b", Weight: 10, Checkpoint: 0.5, Recovery: 0.5},
		{Name: "c", Weight: 3, Checkpoint: 0.1, Recovery: 0.1},
	} {
		id, err := g.AddTask(task)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 {
			if err := g.AddEdge(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	return g
}

func TestFacadeModel(t *testing.T) {
	m, err := repro.NewModel(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := repro.ExpectedTime(m, 10, 1, 1)
	want := math.Exp(0.01) * (100 + 1) * (math.Exp(0.11) - 1)
	if math.Abs(e-want) > 1e-9*want {
		t.Errorf("ExpectedTime = %v, want %v", e, want)
	}
	if _, err := repro.NewModel(-1, 0); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestFacadeOptimalChainPlan(t *testing.T) {
	g := buildChain(t)
	m, err := repro.NewModel(0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := repro.OptimalChainPlan(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Expected <= 18 { // at least the failure-free work + final C
		t.Errorf("Expected = %v, implausibly small", plan.Expected)
	}
	if !plan.CheckpointAfter[len(plan.CheckpointAfter)-1] {
		t.Error("final checkpoint missing")
	}
}

func TestFacadeEvaluateAndSimulateAgree(t *testing.T) {
	g := buildChain(t)
	m, err := repro.NewModel(0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := repro.OptimalChainPlan(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := repro.Plan{Order: []int{0, 1, 2}, CheckpointAfter: plan.CheckpointAfter}
	e, err := repro.EvaluatePlan(m, g, full, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-plan.Expected) > 1e-9 {
		t.Errorf("EvaluatePlan %v ≠ plan.Expected %v", e, plan.Expected)
	}
	mean, ci, err := repro.Simulate(g, m, plan.CheckpointAfter, 40000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-e) > 4*ci {
		t.Errorf("simulated %v ± %v too far from analytical %v", mean, ci, e)
	}
}

func TestFacadeScheduleDAG(t *testing.T) {
	g := repro.NewGraph()
	a, _ := g.AddTask(repro.Task{Weight: 2, Checkpoint: 0.1, Recovery: 0.1})
	b, _ := g.AddTask(repro.Task{Weight: 3, Checkpoint: 0.1, Recovery: 0.1})
	c, _ := g.AddTask(repro.Task{Weight: 4, Checkpoint: 0.1, Recovery: 0.1})
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, c); err != nil {
		t.Fatal(err)
	}
	m, err := repro.NewModel(0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.ScheduleDAG(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan().Validate(g); err != nil {
		t.Errorf("facade DAG plan invalid: %v", err)
	}
	exact, err := repro.ScheduleDAGExact(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := exact.Plan().Validate(g); err != nil {
		t.Errorf("facade exact plan invalid: %v", err)
	}
	if exact.Expected > res.Expected*(1+1e-12) {
		t.Errorf("exact optimum %v worse than portfolio %v", exact.Expected, res.Expected)
	}
}

func TestFacadeReportAndBudget(t *testing.T) {
	g := buildChain(t)
	m, err := repro.NewModel(0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := repro.OptimalChainPlan(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repro.ReportChainPlan(g, m, plan.CheckpointAfter, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Expected-plan.Expected) > 1e-9*plan.Expected {
		t.Errorf("report %v ≠ plan %v", rep.Expected, plan.Expected)
	}
	if rep.StdDev <= 0 || rep.ExpectedWaste <= 0 {
		t.Errorf("degenerate report %+v", rep)
	}

	bounded, err := repro.OptimalChainPlanBounded(g, m, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(bounded.Positions()); got != 1 {
		t.Errorf("budget 1 plan has %d checkpoints", got)
	}
	if bounded.Expected < plan.Expected {
		t.Error("budgeted plan cannot beat the unconstrained optimum")
	}
}

// TestFacadeExecutePlan drives the crash-safe runtime through the
// facade: the realized mean must validate the planned expectation, and
// the planned expectation must agree with the analytical plan value to
// float association (same segment formula, different summation order).
func TestFacadeExecutePlan(t *testing.T) {
	g := buildChain(t)
	m, err := repro.NewModel(0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := repro.OptimalChainPlan(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repro.ExecutePlan(g, m, plan.CheckpointAfter, 40000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Planned-plan.Expected) > 1e-12*plan.Expected {
		t.Errorf("ExecutePlan planned %v ≠ analytical %v", rep.Planned, plan.Expected)
	}
	if rep.Runs != 40000 || rep.CI <= 0 {
		t.Errorf("degenerate report %+v", rep)
	}
	if d := math.Abs(rep.Realized - rep.Planned); d > 4*rep.CI {
		t.Errorf("realized %v too far from planned %v (|Δ|=%v, ci=%v)", rep.Realized, rep.Planned, d, rep.CI)
	}
	if !rep.WithinCI() && math.Abs(rep.Realized-rep.Planned) <= rep.CI {
		t.Error("WithinCI inconsistent with its fields")
	}

	if _, err := repro.ExecutePlan(g, m, []bool{true}, 10, 1); err == nil {
		t.Error("mis-sized checkpoint vector accepted")
	}
}

// TestFacadeExecutePlanResilient drives the adaptive executor through
// the facade against a degraded store: heavy virtual latency must show
// up as store overhead and trigger online replanning, a clean store
// must leave the ladder at "healthy", and the same (latency, seed) pair
// must reproduce the report exactly.
func TestFacadeExecutePlanResilient(t *testing.T) {
	g := buildChain(t)
	m, err := repro.NewModel(0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := repro.OptimalChainPlan(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repro.ExecutePlanResilient(g, m, plan.CheckpointAfter, 2.0, 0.2, 17)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 || rep.StoreOverhead <= 0 {
		t.Errorf("degenerate resilience report %+v", rep)
	}
	if rep.MaxRewind < 0 || rep.MaxRewind > rep.Makespan {
		t.Errorf("rewind exposure %v outside [0, makespan=%v]", rep.MaxRewind, rep.Makespan)
	}
	if rep.Level == "" {
		t.Errorf("missing ladder level in %+v", rep)
	}
	again, err := repro.ExecutePlanResilient(g, m, plan.CheckpointAfter, 2.0, 0.2, 17)
	if err != nil {
		t.Fatal(err)
	}
	if again != rep {
		t.Errorf("same seed must reproduce the report: %+v vs %+v", again, rep)
	}

	clean, err := repro.ExecutePlanResilient(g, m, plan.CheckpointAfter, 0, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Level != "healthy" || clean.Replans != 0 || clean.GiveUps != 0 {
		t.Errorf("clean store should stay healthy with no interventions: %+v", clean)
	}

	if _, err := repro.ExecutePlanResilient(g, m, []bool{true}, 1, 0.1, 1); err == nil {
		t.Error("mis-sized checkpoint vector accepted")
	}
}

func TestFacadeDistributions(t *testing.T) {
	if _, err := repro.Exponential(0); err == nil {
		t.Error("invalid exponential accepted")
	}
	e, err := repro.Exponential(0.5)
	if err != nil || e.Mean() != 2 {
		t.Errorf("Exponential: %v %v", e, err)
	}
	w, err := repro.Weibull(0.7, 10)
	if err != nil || w.Shape != 0.7 {
		t.Errorf("Weibull: %v %v", w, err)
	}
}

func TestFacadeOptimalChainPlanTelemetry(t *testing.T) {
	g := repro.NewGraph()
	prev := -1
	for i := 0; i < 8; i++ {
		id, err := g.AddTask(repro.Task{Name: fmt.Sprintf("t%d", i), Weight: 2, Checkpoint: 0.2, Recovery: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 {
			if err := g.AddEdge(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	m, err := repro.NewModel(0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	// A store behind a slow deterministic link: every probe measures
	// exactly the base latency, so the re-solve sees C_eff = C + 2.
	netCfg := netsim.Config{Seed: 5, Latency: 2}
	slow := store.Checked(store.NewRemoteStore(store.NewMemStore(), netsim.New(netCfg), netCfg,
		store.RemoteConfig{Remote: "s0", Timeout: 10}))
	tp, err := repro.OptimalChainPlanTelemetry(g, m, 0, slow, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Probe.Tracked || tp.Probe.Failures != 0 || tp.Overhead != 2 {
		t.Fatalf("probe = %+v overhead %v, want tracked failure-free estimate 2", tp.Probe, tp.Overhead)
	}
	naiveCk, planCk := len(tp.Naive.Positions()), len(tp.Plan.Positions())
	if planCk >= naiveCk {
		t.Errorf("telemetry placement has %d checkpoints, naive %d — a 10x cost should sparsify", planCk, naiveCk)
	}
	if tp.Plan.Expected < tp.Naive.Expected {
		t.Errorf("true-cost expectations inverted: telemetry %v < naive optimum %v", tp.Plan.Expected, tp.Naive.Expected)
	}
	if !tp.Plan.CheckpointAfter[len(tp.Plan.CheckpointAfter)-1] {
		t.Error("final position must stay checkpointed")
	}

	// An untracked store probes to zero overhead: the telemetry plan
	// degenerates to the naive optimum.
	flat, err := repro.OptimalChainPlanTelemetry(g, m, 0, store.NewMemStore(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Probe.Tracked || flat.Overhead != 0 {
		t.Fatalf("mem-store probe = %+v, want untracked zero overhead", flat.Probe)
	}
	if !reflect.DeepEqual(flat.Plan.CheckpointAfter, flat.Naive.CheckpointAfter) {
		t.Errorf("zero overhead should reproduce the naive placement: %v vs %v",
			flat.Plan.CheckpointAfter, flat.Naive.CheckpointAfter)
	}
}
